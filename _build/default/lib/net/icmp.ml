type t = {
  ip : Ip.t;
  mutable waiting : (int * (unit -> unit)) list;   (* seq -> callback *)
  mutable served : int;
  mutable replies : int;
}

let type_echo_request = 8
let type_echo_reply = 0
let header = 4                            (* type, code, seq u16 *)

let encode ~typ ~seq payload =
  let h = Bytes.make header '\000' in
  Bytes.set_uint8 h 0 typ;
  Bytes.set_uint16_le h 2 seq;
  Bytes.cat h payload

let input t (pkt : Ip.packet) =
  if Bytes.length pkt.Ip.payload >= header then begin
    let typ = Bytes.get_uint8 pkt.Ip.payload 0 in
    let seq = Bytes.get_uint16_le pkt.Ip.payload 2 in
    let body =
      Bytes.sub pkt.Ip.payload header (Bytes.length pkt.Ip.payload - header) in
    if typ = type_echo_request then begin
      t.served <- t.served + 1;
      ignore (Ip.send t.ip ~dst:pkt.Ip.src ~proto:Ip.proto_icmp
                (encode ~typ:type_echo_reply ~seq body))
    end else if typ = type_echo_reply then begin
      t.replies <- t.replies + 1;
      match List.assoc_opt seq t.waiting with
      | Some k ->
        t.waiting <- List.remove_assoc seq t.waiting;
        k ()
      | None -> ()
    end
  end

let create _dispatcher ip =
  let t = { ip; waiting = []; served = 0; replies = 0 } in
  ignore (Ip.attach ip ~protos:[ Ip.proto_icmp ] ~installer:"ICMP" (input t));
  t

let ping t ~dst ~seq ?(payload = Bytes.create 16) k =
  t.waiting <- (seq, k) :: t.waiting;
  let sent =
    Ip.send t.ip ~dst ~proto:Ip.proto_icmp
      (encode ~typ:type_echo_request ~seq payload) in
  if not sent then t.waiting <- List.remove_assoc seq t.waiting;
  sent

let echo_requests_served t = t.served

let replies_received t = t.replies
