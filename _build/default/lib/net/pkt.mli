(** Packet buffers.

    A packet is a byte sequence that grows at the front as each layer
    pushes its header and shrinks as receiving layers pull theirs —
    the paper's packets are "pushed through the protocol graph by
    events and pulled by handlers". *)

type t

val of_payload : Bytes.t -> t

val of_string : string -> t

val length : t -> int

val push : t -> Bytes.t -> unit
(** Prepend a header. *)

val pull : t -> int -> Bytes.t
(** Remove and return the first [n] bytes. Raises [Invalid_argument]
    if the packet is shorter. *)

val peek : t -> int -> Bytes.t
(** The first [n] bytes without consuming them. *)

val contents : t -> Bytes.t
(** The remaining bytes (a copy). *)

val to_string : t -> string

val copy : t -> t
