module Dispatcher = Spin_core.Dispatcher

let is_network_event name =
  List.exists
    (fun prefix -> String.length name >= String.length prefix
                   && String.sub name 0 (String.length prefix) = prefix)
    [ "Ether."; "ATM."; "T3."; "IP."; "UDP."; "TCP."; "ICMP."; "HTTP.";
      "Video."; "A.M."; "RPC."; "Forward." ]

let network_events dispatcher =
  Dispatcher.topology dispatcher
  |> List.filter_map (fun (name, _owner, handlers) ->
    if is_network_event name then Some (name, handlers) else None)

let render dispatcher =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Protocol graph (events -> handlers), from live registrations:\n";
  List.iter
    (fun (name, handlers) ->
      Buffer.add_string buf (Printf.sprintf "  (%s)\n" name);
      List.iter
        (fun h -> Buffer.add_string buf (Printf.sprintf "    |--> [%s]\n" h))
        handlers)
    (network_events dispatcher);
  Buffer.contents buf
