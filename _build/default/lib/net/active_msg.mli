(** Active Messages (von Eicken et al.), as a SPIN extension: the
    message carries the index of the handler that consumes it, and the
    handler runs directly from the protocol thread — no unnecessary
    scheduling between wire and computation. *)

type t

val proto : int
(** The IP protocol number the extension claims. *)

val create : Spin_machine.Machine.t -> Spin_core.Dispatcher.t -> Ip.t -> t

val register : t -> (src:Ip.addr -> Bytes.t -> unit) -> int
(** Returns the handler index to name in messages. *)

val unregister : t -> int -> unit

val send : t -> dst:Ip.addr -> handler:int -> Bytes.t -> bool

type stats = { sent : int; delivered : int; dropped : int }

val stats : t -> stats
