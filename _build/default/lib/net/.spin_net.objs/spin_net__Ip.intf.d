lib/net/ip.mli: Bytes Netif Spin_core Spin_machine
