lib/net/video.mli: Bytes Host Ip Netif Spin_core Spin_fs
