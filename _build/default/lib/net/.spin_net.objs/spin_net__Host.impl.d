lib/net/host.ml: Active_msg Icmp Ip List Netif Rpc Spin_core Spin_machine Spin_sched Tcp Udp
