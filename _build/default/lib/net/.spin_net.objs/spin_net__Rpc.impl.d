lib/net/rpc.ml: Active_msg Bytes Hashtbl Int32 Spin_machine Spin_sched String
