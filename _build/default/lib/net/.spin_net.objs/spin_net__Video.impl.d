lib/net/video.ml: Bytes Char Host Ip Lazy List Netif Pkt Printf Spin_core Spin_fs Spin_machine Spin_sched Udp
