lib/net/udp.ml: Bytes Ip Option Spin_core Spin_machine
