lib/net/http.mli: Spin_fs Spin_machine Spin_sched Tcp
