lib/net/netif.ml: Pkt Queue Spin_core Spin_machine Spin_sched
