lib/net/netdbg.ml: Bytes Host Int32 Int64 List Spin_core Spin_machine Spin_sched Udp
