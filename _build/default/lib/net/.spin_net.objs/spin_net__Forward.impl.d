lib/net/forward.ml: Bytes Hashtbl Ip Spin_core Tcp
