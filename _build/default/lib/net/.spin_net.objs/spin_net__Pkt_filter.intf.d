lib/net/pkt_filter.mli: Bytes Spin_machine
