lib/net/proto_graph.ml: Buffer List Printf Spin_core String
