lib/net/pkt_filter.ml: Bytes Ip List Spin_machine
