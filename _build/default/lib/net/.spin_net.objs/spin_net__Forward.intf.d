lib/net/forward.mli: Ip Tcp
