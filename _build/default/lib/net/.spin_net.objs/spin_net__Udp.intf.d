lib/net/udp.mli: Bytes Ip Spin_core Spin_machine
