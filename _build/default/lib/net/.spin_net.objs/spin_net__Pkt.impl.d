lib/net/pkt.ml: Bytes
