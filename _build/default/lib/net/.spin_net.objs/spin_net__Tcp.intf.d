lib/net/tcp.mli: Bytes Ip Spin_core Spin_machine Spin_sched
