lib/net/netdbg.mli: Host Ip Spin_sched
