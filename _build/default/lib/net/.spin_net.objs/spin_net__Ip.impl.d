lib/net/ip.ml: Bytes Int32 List Netif Option Pkt Printf Spin_core Spin_machine
