lib/net/netif.mli: Pkt Spin_core Spin_machine Spin_sched
