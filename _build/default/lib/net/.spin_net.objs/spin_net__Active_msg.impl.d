lib/net/active_msg.ml: Bytes Ip Spin_dstruct Spin_machine
