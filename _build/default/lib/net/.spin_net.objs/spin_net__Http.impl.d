lib/net/http.ml: Buffer Bytes Printf Spin_fs Spin_machine Spin_sched String Tcp
