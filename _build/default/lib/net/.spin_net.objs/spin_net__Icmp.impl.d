lib/net/icmp.ml: Bytes Ip List
