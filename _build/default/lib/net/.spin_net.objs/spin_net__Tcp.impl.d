lib/net/tcp.ml: Buffer Bytes Hashtbl Int32 Ip List Spin_core Spin_machine Spin_sched
