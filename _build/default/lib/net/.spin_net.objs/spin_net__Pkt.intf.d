lib/net/pkt.mli: Bytes
