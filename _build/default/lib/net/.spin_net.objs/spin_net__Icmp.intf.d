lib/net/icmp.mli: Bytes Ip Spin_core
