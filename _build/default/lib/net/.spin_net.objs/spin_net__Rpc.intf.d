lib/net/rpc.mli: Active_msg Bytes Ip Spin_machine Spin_sched
