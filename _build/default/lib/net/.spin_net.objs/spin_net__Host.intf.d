lib/net/host.mli: Active_msg Icmp Ip Netif Rpc Spin_core Spin_machine Spin_sched Tcp Udp
