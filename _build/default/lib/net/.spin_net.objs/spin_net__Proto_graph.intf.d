lib/net/proto_graph.mli: Spin_core
