lib/net/active_msg.mli: Bytes Ip Spin_core Spin_machine
