module Machine = Spin_machine.Machine
module Clock = Spin_machine.Clock

let proto = 200
let header = 4                            (* handler u16, len u16 *)

type t = {
  machine : Machine.t;
  ip : Ip.t;
  handlers : (src:Ip.addr -> Bytes.t -> unit) Spin_dstruct.Idtable.t;
  mutable s_sent : int;
  mutable s_delivered : int;
  mutable s_dropped : int;
}

let process_cost = 180                    (* deliberately lean *)

let input t (pkt : Ip.packet) =
  Clock.charge t.machine.Machine.clock process_cost;
  let b = pkt.Ip.payload in
  if Bytes.length b >= header then begin
    let h = Bytes.get_uint16_le b 0 in
    let len = Bytes.get_uint16_le b 2 in
    if Bytes.length b >= header + len then
      match Spin_dstruct.Idtable.lookup t.handlers h with
      | Some handler ->
        t.s_delivered <- t.s_delivered + 1;
        handler ~src:pkt.Ip.src (Bytes.sub b header len)
      | None -> t.s_dropped <- t.s_dropped + 1
  end

let create machine dispatcher ip =
  ignore dispatcher;
  let t = {
    machine; ip;
    handlers = Spin_dstruct.Idtable.create ();
    s_sent = 0; s_delivered = 0; s_dropped = 0;
  } in
  ignore (Ip.attach ip ~protos:[ proto ] ~installer:"A.M." (input t));
  t

let register t handler = Spin_dstruct.Idtable.insert t.handlers handler

let unregister t i = Spin_dstruct.Idtable.remove t.handlers i

let send t ~dst ~handler payload =
  Clock.charge t.machine.Machine.clock process_cost;
  let b = Bytes.make (header + Bytes.length payload) '\000' in
  Bytes.set_uint16_le b 0 handler;
  Bytes.set_uint16_le b 2 (Bytes.length payload);
  Bytes.blit payload 0 b header (Bytes.length payload);
  let ok = Ip.send t.ip ~dst ~proto b in
  if ok then t.s_sent <- t.s_sent + 1;
  ok

type stats = { sent : int; delivered : int; dropped : int }

let stats t = { sent = t.s_sent; delivered = t.s_delivered; dropped = t.s_dropped }
