(** The in-kernel HTTP server extension (paper, sections 5.3-5.4):
    splices the TCP stack to the file system inside the kernel, with
    the hybrid object cache deciding what stays in memory. *)

type t

val create :
  ?port:int -> Spin_machine.Machine.t -> Spin_sched.Sched.t -> Tcp.t ->
  Spin_fs.File_cache.t -> t
(** Listens (default port 80). Request format: [GET /name HTTP/1.0].
    Each request is served on its own kernel strand, so a cache miss
    blocks that request on the disk without stalling the protocol
    input thread. *)

val port : t -> int

type stats = {
  requests : int;
  ok : int;
  not_found : int;
  bytes_served : int;
}

val stats : t -> stats
