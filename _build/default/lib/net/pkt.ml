type t = { mutable data : Bytes.t }

let of_payload b = { data = Bytes.copy b }

let of_string s = { data = Bytes.of_string s }

let length t = Bytes.length t.data

let push t header = t.data <- Bytes.cat header t.data

let pull t n =
  if n > Bytes.length t.data then invalid_arg "Pkt.pull: short packet";
  let head = Bytes.sub t.data 0 n in
  t.data <- Bytes.sub t.data n (Bytes.length t.data - n);
  head

let peek t n =
  if n > Bytes.length t.data then invalid_arg "Pkt.peek: short packet";
  Bytes.sub t.data 0 n

let contents t = Bytes.copy t.data

let to_string t = Bytes.to_string t.data

let copy t = { data = Bytes.copy t.data }
