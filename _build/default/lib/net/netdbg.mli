(** The network debugger (the paper's `core` component includes "a
    network debugger" in the style of Topaz teledebugging).

    A debugged kernel answers UDP queries from a peer workstation
    entirely inside its network stack — usable even when everything
    above the stack is wedged. Queries: liveness, scheduler and
    event-dispatch statistics, and physical-memory peeks. *)

type t

val serve :
  ?port:int -> Host.t -> Spin_sched.Sched.t -> t
(** Installs the debugger on the kernel's UDP stack (default port
    2345). *)

type report = {
  strands_spawned : int;
  strands_completed : int;
  strands_failed : int;
  context_switches : int;
  events_declared : int;
}

type answer =
  | Alive
  | Stats of report
  | Word of int64
  | Refused

val query_alive :
  Host.t -> dst:Ip.addr -> ?port:int -> unit -> bool
(** Client side; blocks the calling strand (1 ms timeout). *)

val query_stats :
  Host.t -> dst:Ip.addr -> ?port:int -> unit -> report option

val query_peek :
  Host.t -> dst:Ip.addr -> ?port:int -> pa:int -> unit ->
  int64 option
(** Reads 8 bytes of the debugged kernel's physical memory. Out-of-
    range addresses are refused. *)

val queries_served : t -> int
