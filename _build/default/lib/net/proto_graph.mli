(** Introspection over the live dispatcher: the protocol graph of
    Figure 5, reconstructed from actual event registrations. *)

val render : Spin_core.Dispatcher.t -> string
(** An ASCII rendering: each event (oval, in the paper's figure) with
    the handlers installed on it (boxes). *)

val network_events : Spin_core.Dispatcher.t -> (string * string list) list
(** [(event, handlers)] restricted to the protocol stack's events. *)
