(** A remote procedure call package whose transport is the Active
    Messages extension (paper, Figure 5): named procedures exported on
    the server, blocking calls with request matching and timeout on
    the client. *)

type t

val create :
  Spin_machine.Machine.t -> Spin_sched.Sched.t -> Active_msg.t -> t

val export : t -> name:string -> (Bytes.t -> Bytes.t) -> unit
(** Make a procedure callable from remote hosts. *)

val call :
  t -> ?timeout_us:float -> dst:Ip.addr -> name:string -> Bytes.t ->
  Bytes.t option
(** Blocks the calling strand for the reply; [None] on timeout or an
    unknown remote procedure. Default timeout: one second. *)

type stats = { calls : int; served : int; timeouts : int }

val stats : t -> stats
