(** ICMP echo (the "Ping" box of Figure 5).

    The module attaches to IP protocol 1, answers echo requests, and
    routes echo replies to per-sequence callbacks. *)

type t

val create : Spin_core.Dispatcher.t -> Ip.t -> t

val ping :
  t -> dst:Ip.addr -> seq:int -> ?payload:Bytes.t ->
  (unit -> unit) -> bool
(** Sends an echo request; the callback runs when the matching reply
    arrives. [false] if the request could not be sent. *)

val echo_requests_served : t -> int

val replies_received : t -> int
