type ('k, 'v) t = {
  capacity : int;
  on_evict : 'k -> 'v -> unit;
  table : ('k, ('k * 'v ref) Dllist.node) Hashtbl.t;
  order : ('k * 'v ref) Dllist.t;     (* front = most recently used *)
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; on_evict; table = Hashtbl.create 64; order = Dllist.create () }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let touch t node =
  let v = Dllist.value node in
  Dllist.remove t.order node;
  let node' = Dllist.push_front t.order v in
  Hashtbl.replace t.table (fst v) node'

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    let (_, vref) = Dllist.value node in
    touch t node;
    Some !vref

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> let (_, vref) = Dllist.value node in Some !vref

let evict_lru t =
  match Dllist.pop_back t.order with
  | None -> ()
  | Some (k, vref) ->
    Hashtbl.remove t.table k;
    t.on_evict k !vref

let add t k v =
  (match Hashtbl.find_opt t.table k with
   | Some node ->
     let (_, vref) = Dllist.value node in
     vref := v;
     touch t node
   | None ->
     let node = Dllist.push_front t.order (k, ref v) in
     Hashtbl.replace t.table k node);
  while Hashtbl.length t.table > t.capacity do evict_lru t done

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    Dllist.remove t.order node;
    Hashtbl.remove t.table k

let mem t k = Hashtbl.mem t.table k

let iter f t = Dllist.iter (fun (k, vref) -> f k !vref) t.order

let clear t =
  Hashtbl.reset t.table;
  Dllist.clear t.order
