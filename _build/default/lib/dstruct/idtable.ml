type 'a t = {
  mutable slots : 'a option array;
  mutable free : int list;
  mutable next : int;           (* first never-used slot *)
  mutable live : int;
}

let create () = { slots = Array.make 16 None; free = []; next = 0; live = 0 }

let ensure t i =
  let cap = Array.length t.slots in
  if i >= cap then begin
    let nslots = Array.make (max (2 * cap) (i + 1)) None in
    Array.blit t.slots 0 nslots 0 cap;
    t.slots <- nslots
  end

let insert t v =
  let i =
    match t.free with
    | i :: rest -> t.free <- rest; i
    | [] -> let i = t.next in t.next <- i + 1; i in
  ensure t i;
  t.slots.(i) <- Some v;
  t.live <- t.live + 1;
  i

let lookup t i =
  if i < 0 || i >= Array.length t.slots then None else t.slots.(i)

let remove t i =
  if i >= 0 && i < Array.length t.slots then
    match t.slots.(i) with
    | None -> ()
    | Some _ ->
      t.slots.(i) <- None;
      t.free <- i :: t.free;
      t.live <- t.live - 1

let length t = t.live

let iter f t =
  Array.iteri (fun i slot -> match slot with Some v -> f i v | None -> ()) t.slots
