(** Index tables for externalized references.

    A kernel service that passes a capability to user space hands out
    an index into a per-application table instead of the pointer
    itself (paper, section 3.1). Slots are recycled through a free
    list; stale indices return [None]. *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> 'a -> int
(** [insert t v] stores [v] and returns its externalized index. *)

val lookup : 'a t -> int -> 'a option
(** [lookup t i] recovers the value, or [None] for free/invalid slots. *)

val remove : 'a t -> int -> unit
(** [remove t i] frees slot [i]; later {!lookup}s return [None]. *)

val length : 'a t -> int
(** Number of live entries. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
