type t = {
  bits : Bytes.t;
  nbits : int;
  mutable set_count : int;
}

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; nbits = n; set_count = 0 }

let length t = t.nbits

let check t i =
  if i < 0 || i >= t.nbits then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i;
  if not (mem t i) then begin
    let b = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))));
    t.set_count <- t.set_count + 1
  end

let clear t i =
  check t i;
  if mem t i then begin
    let b = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (b land lnot (1 lsl (i mod 8)) land 0xff));
    t.set_count <- t.set_count - 1
  end

let count t = t.set_count

let find_first p t =
  let rec loop i = if i >= t.nbits then None else if p (mem t i) then Some i else loop (i + 1) in
  loop 0

let find_first_clear t = find_first not t

let find_first_set t = find_first (fun b -> b) t

let find_clear_run t k =
  if k <= 0 then invalid_arg "Bitset.find_clear_run: run must be positive";
  let rec scan start run i =
    if run = k then Some start
    else if i >= t.nbits then None
    else if mem t i then scan (i + 1) 0 (i + 1)
    else scan start (run + 1) (i + 1) in
  scan 0 0 0

let fill t =
  for i = 0 to t.nbits - 1 do set t i done

let reset t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.set_count <- 0
