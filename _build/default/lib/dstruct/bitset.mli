(** Fixed-size bit vectors.

    The physical page allocator uses a bitset as its frame map. *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all clear.
    Raises [Invalid_argument] if [n < 0]. *)

val length : t -> int
(** Number of bits. *)

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val count : t -> int
(** Number of set bits. *)

val find_first_clear : t -> int option
(** Lowest clear bit index, if any. *)

val find_first_set : t -> int option

val find_clear_run : t -> int -> int option
(** [find_clear_run t k] is the start of the lowest run of [k]
    consecutive clear bits, used for contiguous frame allocation. *)

val fill : t -> unit
(** Set every bit. *)

val reset : t -> unit
(** Clear every bit. *)
