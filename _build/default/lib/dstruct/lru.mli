(** Capacity-bounded LRU maps.

    The buffer cache and the web server's file cache use LRU
    replacement; an eviction callback lets the owner write back or
    account for the displaced entry. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] is an empty cache evicting least-recently-used
    entries beyond [capacity]. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] returns the binding and marks it most recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} without touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** [add t k v] binds [k] (replacing any previous binding), marks it
    most recently used, and evicts the LRU entry if over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Removes without invoking the eviction callback. *)

val mem : ('k, 'v) t -> 'k -> bool

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Most-recently-used first. *)

val clear : ('k, 'v) t -> unit
