(** Fixed-capacity circular buffers.

    Device transmit/receive queues and the console input queue are
    rings: producers fail (rather than block or grow) when the ring
    is full, modelling bounded hardware queues that drop on overflow. *)

type 'a t

val create : int -> 'a t
(** [create n] is an empty ring holding at most [n] elements.
    Raises [Invalid_argument] if [n <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t v] appends [v]; [false] (and no change) when full. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the oldest element. *)

val peek : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] oldest-first. *)

val clear : 'a t -> unit
