type 'a node = {
  value : 'a;
  owner : 'a t;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

and 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable len : int;
}

let create () = { head = None; tail = None; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let push_front t v =
  let n = { value = v; owner = t; prev = None; next = t.head; linked = true } in
  (match t.head with
   | None -> t.tail <- Some n
   | Some h -> h.prev <- Some n);
  t.head <- Some n;
  t.len <- t.len + 1;
  n

let push_back t v =
  let n = { value = v; owner = t; prev = t.tail; next = None; linked = true } in
  (match t.tail with
   | None -> t.head <- Some n
   | Some last -> last.next <- Some n);
  t.tail <- Some n;
  t.len <- t.len + 1;
  n

let unlink t n =
  (match n.prev with
   | None -> t.head <- n.next
   | Some p -> p.next <- n.next);
  (match n.next with
   | None -> t.tail <- n.prev
   | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  t.len <- t.len - 1

let remove t n =
  if n.owner != t then invalid_arg "Dllist.remove: node from another list";
  if n.linked then unlink t n

let pop_front t =
  match t.head with
  | None -> None
  | Some n -> unlink t n; Some n.value

let pop_back t =
  match t.tail with
  | None -> None
  | Some n -> unlink t n; Some n.value

let peek_front t =
  match t.head with None -> None | Some n -> Some n.value

let peek_back t =
  match t.tail with None -> None | Some n -> Some n.value

let value n = n.value

let is_linked n = n.linked

let iter f t =
  let rec loop = function
    | None -> ()
    | Some n -> let next = n.next in f n.value; loop next in
  loop t.head

let fold f acc t =
  let rec loop acc = function
    | None -> acc
    | Some n -> loop (f acc n.value) n.next in
  loop acc t.head

let exists p t =
  let rec loop = function
    | None -> false
    | Some n -> p n.value || loop n.next in
  loop t.head

let find p t =
  let rec loop = function
    | None -> None
    | Some n -> if p n.value then Some n.value else loop n.next in
  loop t.head

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let clear t =
  let rec loop = function
    | None -> ()
    | Some n ->
      let next = n.next in
      n.prev <- None; n.next <- None; n.linked <- false;
      loop next in
  loop t.head;
  t.head <- None; t.tail <- None; t.len <- 0
