(** Doubly-linked lists with O(1) insertion, removal and node handles.

    The kernel uses these for run queues, wait queues and cache chains.
    A node handle returned by {!push_front}/{!push_back} can be removed
    from its list in constant time; removing a node twice is a no-op. *)

type 'a t
(** A mutable doubly-linked list. *)

type 'a node
(** A handle to an element stored in a list. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty list. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** [length t] is the number of elements; O(1). *)

val push_front : 'a t -> 'a -> 'a node
(** [push_front t v] prepends [v] and returns its handle. *)

val push_back : 'a t -> 'a -> 'a node
(** [push_back t v] appends [v] and returns its handle. *)

val pop_front : 'a t -> 'a option
(** [pop_front t] removes and returns the first element. *)

val pop_back : 'a t -> 'a option
(** [pop_back t] removes and returns the last element. *)

val peek_front : 'a t -> 'a option

val peek_back : 'a t -> 'a option

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n] from [t]. No-op if already removed.
    Raises [Invalid_argument] if [n] belongs to a different list. *)

val value : 'a node -> 'a
(** [value n] is the element carried by [n]. *)

val is_linked : 'a node -> bool
(** [is_linked n] is [true] while [n] is still in its list. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] front to back. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find : ('a -> bool) -> 'a t -> 'a option

val to_list : 'a t -> 'a list
(** [to_list t] is the elements front to back. *)

val clear : 'a t -> unit
(** [clear t] unlinks every node. *)
