lib/dstruct/pqueue.mli:
