lib/dstruct/lru.ml: Dllist Hashtbl
