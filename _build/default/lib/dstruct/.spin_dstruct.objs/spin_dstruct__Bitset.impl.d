lib/dstruct/bitset.ml: Bytes Char
