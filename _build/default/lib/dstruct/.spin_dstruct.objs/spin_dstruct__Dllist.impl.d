lib/dstruct/dllist.ml: List
