lib/dstruct/ring.mli:
