lib/dstruct/pqueue.ml: Array
