lib/dstruct/lru.mli:
