lib/dstruct/dllist.mli:
