lib/dstruct/ring.ml: Array
