lib/dstruct/bitset.mli:
