lib/dstruct/idtable.ml: Array
