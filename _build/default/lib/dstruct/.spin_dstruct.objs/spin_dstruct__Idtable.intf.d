lib/dstruct/idtable.mli:
