module Addr = Spin_machine.Addr
module Mmu = Spin_machine.Mmu
module Cpu = Spin_machine.Cpu
module Machine = Spin_machine.Machine
module Phys_mem = Spin_machine.Phys_mem
module Capability = Spin_core.Capability
module Dispatcher = Spin_core.Dispatcher

(* Every resident page is one single-frame physical run, so sharing
   and copy-on-write act page by page. *)
type page_slot = {
  mutable page : Phys_addr.page;
  mutable writable : bool;      (* the logical (pre-COW) protection *)
}

type segment = {
  vaddr : Virt_addr.vaddr;
  slots : page_slot array;
}

type t = {
  mgr : mgr;
  space_name : string;
  ctx : Translation.context;
  mutable segments : segment list;
  mutable live : bool;
}

and mgr = {
  vm : Vm.t;
  mutable spaces : t list;
  refcounts : (int, int ref) Hashtbl.t;   (* capability id -> sharers *)
  mutable cow_copies : int;
}

let owner = "AddrSpace"

let refcount mgr page =
  let key = Capability.id page in
  match Hashtbl.find_opt mgr.refcounts key with
  | Some r -> r
  | None -> let r = ref 1 in Hashtbl.replace mgr.refcounts key r; r

let drop_ref mgr page =
  let key = Capability.id page in
  let r = refcount mgr page in
  decr r;
  if !r <= 0 then begin
    Hashtbl.remove mgr.refcounts key;
    Phys_addr.deallocate mgr.vm.Vm.phys page
  end

let find_slot space va =
  let vpn = Addr.vpn_of_va va in
  List.find_map
    (fun seg ->
      let region = Virt_addr.region seg.vaddr in
      let first = Addr.vpn_of_va region.Virt_addr.va in
      let idx = vpn - first in
      if idx >= 0 && idx < Array.length seg.slots then Some (seg, idx) else None)
    space.segments

(* Copy-on-write resolution: called from the ProtectionFault event. *)
let resolve_write_fault mgr space va =
  match find_slot space va with
  | None -> ()
  | Some (seg, idx) ->
    let slot = seg.slots.(idx) in
    if slot.writable then begin
      let r = refcount mgr slot.page in
      let region = Virt_addr.region seg.vaddr in
      let page_va = region.Virt_addr.va + (idx * Addr.page_size) in
      if !r > 1 then begin
        (* Shared: copy the page, remap privately. *)
        decr r;
        let fresh = Phys_addr.allocate mgr.vm.Vm.phys ~owner ~bytes:Addr.page_size in
        let src = Phys_addr.page_run slot.page in
        let dst = Phys_addr.page_run fresh in
        let mem = mgr.vm.Vm.machine.Machine.mem in
        Phys_mem.copy mem
          ~src:(Addr.pa_of_page src.Phys_addr.first_pfn)
          ~dst:(Addr.pa_of_page dst.Phys_addr.first_pfn)
          ~len:Addr.page_size;
        slot.page <- fresh;
        ignore (refcount mgr fresh);
        mgr.cow_copies <- mgr.cow_copies + 1;
        Translation.map_one mgr.vm.Vm.trans space.ctx ~va:page_va fresh ~index:0
          Addr.prot_read_write
      end else
        (* Last sharer: take the page back read-write. *)
        ignore (Translation.protect mgr.vm.Vm.trans space.ctx ~va:page_va
                  ~npages:1 Addr.prot_read_write)
    end

let create_manager vm =
  let mgr = { vm; spaces = []; refcounts = Hashtbl.create 256; cow_copies = 0 } in
  ignore
    (Dispatcher.install_exn (Translation.protection_fault vm.Vm.trans)
       ~installer:owner
       ~guard:(fun f ->
         f.Translation.access = Mmu.Write
         && List.exists
              (fun s -> s.live
                        && Translation.context_id s.ctx
                           = Translation.context_id f.Translation.ctx)
              mgr.spaces)
       (fun f ->
         let space =
           List.find
             (fun s -> Translation.context_id s.ctx
                       = Translation.context_id f.Translation.ctx)
             mgr.spaces in
         resolve_write_fault mgr space f.Translation.va));
  mgr

let vm mgr = mgr.vm

let create mgr ~name =
  let ctx = Translation.create_context mgr.vm.Vm.trans ~owner:name in
  let space = { mgr; space_name = name; ctx; segments = []; live = true } in
  mgr.spaces <- space :: mgr.spaces;
  space

let add_segment space vaddr =
  let vm = space.mgr.vm in
  let region = Virt_addr.region vaddr in
  let n = Virt_addr.npages region in
  let slots =
    Array.init n (fun i ->
      let page = Phys_addr.allocate vm.Vm.phys ~owner ~bytes:Addr.page_size in
      Phys_addr.zero vm.Vm.phys page;
      ignore (refcount space.mgr page);
      Translation.map_one vm.Vm.trans space.ctx
        ~va:(region.Virt_addr.va + (i * Addr.page_size)) page ~index:0
        Addr.prot_read_write;
      { page; writable = true }) in
  Translation.attach_region space.ctx region;
  space.segments <- { vaddr; slots } :: space.segments;
  region.Virt_addr.va

let allocate space ~bytes =
  let vm = space.mgr.vm in
  let vaddr =
    Virt_addr.allocate vm.Vm.virt ~asid:(Translation.context_id space.ctx)
      ~owner:space.space_name ~bytes in
  add_segment space vaddr

let allocate_at space ~va ~bytes =
  let vm = space.mgr.vm in
  Virt_addr.allocate_at vm.Vm.virt ~asid:(Translation.context_id space.ctx)
    ~owner:space.space_name ~va ~bytes
  |> Option.map (fun vaddr -> add_segment space vaddr)

let release_segment space seg =
  let vm = space.mgr.vm in
  Translation.remove_mapping vm.Vm.trans space.ctx seg.vaddr;
  Array.iter (fun slot -> drop_ref space.mgr slot.page) seg.slots;
  Virt_addr.deallocate vm.Vm.virt seg.vaddr

let free space ~va =
  match
    List.partition
      (fun seg -> (Virt_addr.region seg.vaddr).Virt_addr.va = va)
      space.segments
  with
  | [], _ -> ()
  | found, rest ->
    space.segments <- rest;
    List.iter (release_segment space) found

let copy mgr parent ~name =
  let vm = mgr.vm in
  let child = create mgr ~name in
  List.iter
    (fun seg ->
      let region = Virt_addr.region seg.vaddr in
      (* The child gets its own region capability at the same va. *)
      match
        Virt_addr.allocate_at vm.Vm.virt
          ~asid:(Translation.context_id child.ctx) ~owner:name
          ~va:region.Virt_addr.va ~bytes:region.Virt_addr.bytes
      with
      | None -> invalid_arg "Addr_space.copy: child region collision"
      | Some cvaddr ->
        let cregion = Virt_addr.region cvaddr in
        Translation.attach_region child.ctx cregion;
        let cslots =
          Array.mapi
            (fun i slot ->
              let va = region.Virt_addr.va + (i * Addr.page_size) in
              let r = refcount mgr slot.page in
              incr r;
              (* Share read-only in both spaces. *)
              Translation.map_one vm.Vm.trans child.ctx ~va slot.page ~index:0
                Addr.prot_read;
              if slot.writable then
                ignore (Translation.protect vm.Vm.trans parent.ctx ~va
                          ~npages:1 Addr.prot_read);
              { page = slot.page; writable = slot.writable })
            seg.slots in
        child.segments <- { vaddr = cvaddr; slots = cslots } :: child.segments)
    parent.segments;
  child

let destroy space =
  if space.live then begin
    space.live <- false;
    List.iter (release_segment space) space.segments;
    space.segments <- [];
    Translation.destroy_context space.mgr.vm.Vm.trans space.ctx;
    space.mgr.spaces <- List.filter (fun s -> s != space) space.mgr.spaces
  end

let context space = space.ctx

let name space = space.space_name

let resident_pages space =
  List.fold_left (fun acc seg -> acc + Array.length seg.slots) 0 space.segments

let cow_copies mgr = mgr.cow_copies

let activate space =
  Cpu.set_context space.mgr.vm.Vm.machine.Machine.cpu
    (Some (Translation.mmu_context space.ctx))
