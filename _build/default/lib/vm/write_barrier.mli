(** Write barriers from protection faults (Appel & Li; paper sections
    4.1 and 5.2): "concurrent and generational garbage collectors can
    use write faults to maintain invariants or collect reference
    information".

    The extension write-protects a set of pages; the first store to
    any of them logs the page and re-enables access, so a collector
    (or DSM consistency layer, or checkpointer) can harvest the set of
    pages dirtied since the last {!rearm}. This is precisely the
    workload the Appel1/Appel2 benchmarks of Table 4 model, running on
    SPIN's fast fault path. *)

type t

val create : Vm.t -> Vm_ext.t -> t
(** Installs the barrier's fault procedure on the extension's
    context. Replaces any handler the extension had. *)

val arm : t -> pages:int list -> unit
(** Write-protect the given pages and start logging. *)

val rearm : t -> unit
(** Re-protect every page dirtied so far and clear the log (the
    start of a new collection cycle). *)

val dirty_pages : t -> int list
(** Pages written since the last {!arm}/{!rearm}, oldest first. *)

val faults_taken : t -> int
