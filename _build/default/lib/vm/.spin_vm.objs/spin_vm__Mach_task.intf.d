lib/vm/mach_task.mli: Addr_space Spin_machine Translation
