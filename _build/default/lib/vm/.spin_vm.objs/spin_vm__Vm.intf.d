lib/vm/vm.mli: Phys_addr Spin_core Spin_machine Translation Virt_addr
