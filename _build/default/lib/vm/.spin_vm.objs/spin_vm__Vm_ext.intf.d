lib/vm/vm_ext.mli: Spin_machine Translation Vm
