lib/vm/vm_ext.ml: Phys_addr Spin_core Spin_machine Translation Virt_addr Vm
