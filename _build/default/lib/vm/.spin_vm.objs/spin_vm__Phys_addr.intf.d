lib/vm/phys_addr.mli: Spin_core Spin_machine
