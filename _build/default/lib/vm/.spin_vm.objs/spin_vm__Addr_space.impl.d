lib/vm/addr_space.ml: Array Hashtbl List Option Phys_addr Spin_core Spin_machine Translation Virt_addr Vm
