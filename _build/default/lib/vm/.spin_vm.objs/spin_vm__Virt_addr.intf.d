lib/vm/virt_addr.mli: Spin_core Spin_machine
