lib/vm/mach_task.ml: Addr_space Spin_machine Translation Vm
