lib/vm/pager.ml: Array Bytes Hashtbl List Option Phys_addr Spin_core Spin_machine Spin_sched Translation Virt_addr Vm
