lib/vm/pager.mli: Spin_machine Spin_sched Translation Virt_addr Vm
