lib/vm/phys_addr.ml: List Option Spin_core Spin_dstruct Spin_machine
