lib/vm/translation.mli: Phys_addr Spin_core Spin_machine Virt_addr
