lib/vm/virt_addr.ml: Hashtbl List Spin_core Spin_machine
