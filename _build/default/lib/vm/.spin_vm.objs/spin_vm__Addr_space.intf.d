lib/vm/addr_space.mli: Translation Vm
