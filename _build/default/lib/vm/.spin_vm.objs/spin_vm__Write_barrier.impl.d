lib/vm/write_barrier.ml: List Spin_machine Vm Vm_ext
