lib/vm/write_barrier.mli: Vm Vm_ext
