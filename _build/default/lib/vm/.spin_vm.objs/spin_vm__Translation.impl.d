lib/vm/translation.ml: Hashtbl List Option Phys_addr Spin_core Spin_machine Virt_addr
