(** The translation service (paper, Figure 3): expresses the
    relationship between virtual addresses and physical memory,
    installs mappings into the MMU, and turns exceptional MMU
    conditions into dispatcher events.

    Higher-level memory abstractions — demand paging, copy-on-write,
    address spaces, concurrent GC — are built by installing handlers
    on [Translation.PageNotPresent], [Translation.BadAddress] and
    [Translation.ProtectionFault]. *)

type t

type context
(** An addressing context (the paper's [Translation.T]). *)

type fault = {
  ctx : context;
  va : int;
  access : Spin_machine.Mmu.access;
}

type costs = {
  map_service : int;       (** AddMapping/RemoveMapping bookkeeping *)
  protect_base : int;      (** first page of a protection change *)
  protect_per_page : int;  (** each page of a protection change *)
  dirty_query : int;       (** page-state query (Table 4, "Dirty") *)
  fault_classify : int;    (** trap decode before the event is raised *)
}

val default_costs : costs

val create :
  ?costs:costs ->
  Spin_machine.Machine.t -> Spin_core.Dispatcher.t -> Phys_addr.t -> t
(** Also hooks the physical service's reclamation: any mappings to a
    reclaimed page are invalidated here. *)

val page_not_present : t -> (fault, unit) Spin_core.Dispatcher.event
val bad_address : t -> (fault, unit) Spin_core.Dispatcher.event
val protection_fault : t -> (fault, unit) Spin_core.Dispatcher.event

val create_context : t -> owner:string -> context
val destroy_context : t -> context -> unit

val context_id : context -> int
(** The address-space identifier ([asid] for the virtual address
    service). *)

val context_owner : context -> string

val attach_region : context -> Virt_addr.region -> unit
(** Declare a virtual region allocated in this context. Accesses
    outside attached regions raise [BadAddress]; unmapped accesses
    inside them raise [PageNotPresent]. *)

val detach_region : context -> Virt_addr.region -> unit

val add_mapping :
  t -> context -> Virt_addr.vaddr -> Phys_addr.page ->
  Spin_machine.Addr.prot -> unit
(** Maps the region's pages to the run's frames (sizes must agree) and
    attaches the region. *)

val map_one :
  t -> context -> va:int -> Phys_addr.page -> index:int ->
  Spin_machine.Addr.prot -> unit
(** Map a single page: virtual page containing [va] to frame [index]
    of the run (a pager maps pages one at a time). *)

val remove_mapping : t -> context -> Virt_addr.vaddr -> unit

val examine_mapping : t -> context -> va:int -> Spin_machine.Addr.prot option

val protect :
  t -> context -> va:int -> npages:int -> Spin_machine.Addr.prot -> int
(** Change protection on a range; returns how many pages were actually
    mapped (and hence changed). Charges the Table 4 protection-path
    costs. *)

val is_dirty : t -> context -> va:int -> bool
(** The page-state query of Table 4 ("Dirty"). *)

val is_referenced : t -> context -> va:int -> bool

val handle_trap : t -> Spin_machine.Cpu.trap -> bool
(** Kernel trap handler leg: classifies a memory fault and raises the
    corresponding event. [false] for non-memory traps. *)

val mmu_context : context -> Spin_machine.Mmu.context
(** For [Cpu.set_context]. *)

val contexts : t -> int

type stats = {
  faults_not_present : int;
  faults_bad_address : int;
  faults_protection : int;
  invalidations : int;     (** mappings dropped by reclamation *)
}

val stats : t -> stats
