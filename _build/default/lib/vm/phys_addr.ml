module Machine = Spin_machine.Machine
module Phys_mem = Spin_machine.Phys_mem
module Clock = Spin_machine.Clock
module Addr = Spin_machine.Addr
module Bitset = Spin_dstruct.Bitset
module Capability = Spin_core.Capability
module Dispatcher = Spin_core.Dispatcher

type run = {
  first_pfn : int;
  npages : int;
  owner : string;
}

type attrib = {
  color : int option;
  contiguous : bool;
}

let default_attrib = { color = None; contiguous = false }

type page = run Capability.t

exception Out_of_memory

type t = {
  machine : Machine.t;
  colors : int;
  used : Bitset.t;
  mutable live : page list;              (* candidates for reclamation *)
  reclaim : (page, page) Dispatcher.event;
  mutable invalidate : (page -> unit) option;
  alloc_cost : int;
}

let create ?(colors = 8) machine dispatcher =
  let frames = Phys_mem.frames machine.Machine.mem in
  let t =
    { machine; colors;
      used = Bitset.create frames;
      live = [];
      reclaim =
        Dispatcher.declare dispatcher ~name:"PhysAddr.Reclaim" ~owner:"PhysAddr"
          (fun candidate -> candidate);
      invalidate = None;
      alloc_cost = 120 } in
  t

let total_pages t = Bitset.length t.used

let free_pages t = Bitset.length t.used - Bitset.count t.used

let reclaim_event t = t.reclaim

let set_invalidate t f = t.invalidate <- Some f

let page_run = Capability.deref

(* Find [n] frames honouring the attributes, or None. *)
let find_frames t ~attrib ~n =
  if attrib.contiguous || n > 1 then
    Bitset.find_clear_run t.used n
    |> Option.map (fun start -> List.init n (fun i -> start + i))
  else
    match attrib.color with
    | None -> Bitset.find_first_clear t.used |> Option.map (fun f -> [ f ])
    | Some c ->
      let frames = Bitset.length t.used in
      let rec scan pfn =
        if pfn >= frames then None
        else if not (Bitset.mem t.used pfn) && pfn mod t.colors = c mod t.colors
        then Some [ pfn ]
        else scan (pfn + 1) in
      scan 0

let release_frames t run =
  for i = run.first_pfn to run.first_pfn + run.npages - 1 do
    Bitset.clear t.used i
  done

let do_reclaim t =
  (* Pick the oldest live allocation as the candidate; handlers may
     substitute a less important page. *)
  match List.rev t.live with
  | [] -> None
  | candidate :: _ ->
    let victim = Dispatcher.raise_event t.reclaim candidate in
    (match t.invalidate with Some f -> f victim | None -> ());
    let run = Capability.deref victim in
    release_frames t run;
    Capability.revoke victim;
    t.live <- List.filter (fun p -> not (Capability.equal p victim)) t.live;
    Some victim

let force_reclaim t = do_reclaim t

let rec alloc_loop t ~attrib ~owner ~bytes =
  let n = Addr.round_up_pages bytes in
  Clock.charge t.machine.Machine.clock t.alloc_cost;
  match find_frames t ~attrib ~n with
  | Some frames ->
    List.iter (Bitset.set t.used) frames;
    let run = { first_pfn = List.hd frames; npages = n; owner } in
    let cap = Capability.mint ~owner:"PhysAddr" run in
    t.live <- cap :: t.live;
    cap
  | None ->
    (* Memory pressure: reclaim a victim and retry once per victim. *)
    match do_reclaim t with
    | Some _ -> alloc_loop t ~attrib ~owner ~bytes
    | None -> raise Out_of_memory

let allocate ?(attrib = default_attrib) t ~owner ~bytes =
  if bytes <= 0 then invalid_arg "PhysAddr.allocate: no bytes";
  alloc_loop t ~attrib ~owner ~bytes

let deallocate t page =
  match Capability.deref_opt page with
  | None -> ()
  | Some run ->
    release_frames t run;
    Capability.revoke page;
    t.live <- List.filter (fun p -> not (Capability.equal p page)) t.live

let zero t page =
  let run = Capability.deref page in
  for i = run.first_pfn to run.first_pfn + run.npages - 1 do
    Phys_mem.zero_frame t.machine.Machine.mem i
  done
