(** An application-specific virtual memory extension: the in-kernel
    half of the Table 4 benchmarks.

    The extension owns a translation context with a run of pages, and
    defines application-specific fault handling: its guarded handler
    on [Translation.ProtectionFault] reflects faults to the
    application's own procedure through a fast in-kernel protected
    call — the structure that makes SPIN dominate Table 4 (no signal
    machinery, no external pager). *)

type t

val create : Vm.t -> app:string -> pages:int -> t
(** Allocates and maps [pages] zeroed read-write pages. *)

val destroy : t -> unit

val context : t -> Translation.context

val va_of_page : t -> int -> int

val activate : t -> unit
(** Make the extension's context current on the CPU (the benchmarks
    run "the application" in this context). *)

val read : t -> page:int -> int64
(** User-level load of the first word of the page (may fault). *)

val write : t -> page:int -> int64 -> unit

val dirty : t -> page:int -> bool
(** The "Dirty" operation of Table 4: query page state. *)

val protect : t -> first:int -> count:int -> Spin_machine.Addr.prot -> unit
(** Prot1 / Prot100 / Unprot100. *)

val on_protection_fault : t -> (int -> unit) -> unit
(** Installs the application's fault procedure; it receives the
    faulting page index. Replaces any previous procedure. *)

val clear_fault_handler : t -> unit

val faults_taken : t -> int
