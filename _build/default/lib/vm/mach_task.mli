(** A kernel extension exporting Mach's task memory abstraction
    (paper, section 4.1) — [vm_allocate]/[vm_deallocate]/[vm_protect]
    over a SPIN address space, demonstrating that different address
    space models coexist above the same three services. *)

type t

val create : Addr_space.mgr -> name:string -> t

val task_self : t -> Translation.context

val vm_allocate : t -> size:int -> int
(** Returns the base address of fresh zero-filled memory. *)

val vm_deallocate : t -> address:int -> unit

val vm_protect : t -> address:int -> size:int -> Spin_machine.Addr.prot -> int
(** Returns the number of pages changed. *)

val fork_task : t -> name:string -> t

val destroy : t -> unit

val space : t -> Addr_space.t
