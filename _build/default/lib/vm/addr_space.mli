(** UNIX address-space semantics as a kernel extension (paper,
    section 4.1): an interface for copying an existing address space
    and allocating additional memory within one, built by composing
    the three memory services.

    [copy] implements fork with copy-on-write: parent and child share
    frames read-only; the manager's guarded [ProtectionFault] handler
    copies a page on first write. *)

type mgr
(** The extension instance; install one per kernel. *)

type t
(** One address space. *)

val create_manager : Vm.t -> mgr
(** Installs the copy-on-write fault handler. *)

val vm : mgr -> Vm.t

val create : mgr -> name:string -> t

val copy : mgr -> t -> name:string -> t
(** Fork: a new space sharing every resident page copy-on-write. *)

val allocate : t -> bytes:int -> int
(** Allocate zeroed, mapped read-write memory; returns the virtual
    address. *)

val allocate_at : t -> va:int -> bytes:int -> int option

val free : t -> va:int -> unit
(** Frees the allocation starting at [va] (no-op if unknown). *)

val destroy : t -> unit
(** Unmaps everything, releases frames (shared frames survive until
    the last space drops them) and destroys the context. *)

val context : t -> Translation.context

val name : t -> string

val resident_pages : t -> int

val cow_copies : mgr -> int
(** Pages copied by write faults since boot. *)

val activate : t -> unit
(** Make this the CPU's current user context. *)
