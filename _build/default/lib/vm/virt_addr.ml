module Addr = Spin_machine.Addr
module Clock = Spin_machine.Clock
module Machine = Spin_machine.Machine
module Capability = Spin_core.Capability

type region = {
  va : int;
  bytes : int;
  asid : int;
  owner : string;
}

type vaddr = region Capability.t

type space = {
  mutable next_va : int;
  mutable regions : region list;         (* live allocations *)
}

type t = {
  machine : Machine.t;
  spaces : (int, space) Hashtbl.t;
  alloc_cost : int;
}

(* User regions start above a guard gap so that va 0 never maps. *)
let base_va = 0x1_0000

let create machine = { machine; spaces = Hashtbl.create 16; alloc_cost = 90 }

let space_of t asid =
  match Hashtbl.find_opt t.spaces asid with
  | Some s -> s
  | None ->
    let s = { next_va = base_va; regions = [] } in
    Hashtbl.replace t.spaces asid s;
    s

let overlaps a_va a_bytes r =
  a_va < r.va + r.bytes && r.va < a_va + a_bytes

let round_bytes bytes = Addr.round_up_pages bytes * Addr.page_size

let allocate t ~asid ~owner ~bytes =
  if bytes <= 0 then invalid_arg "VirtAddr.allocate: no bytes";
  Clock.charge t.machine.Machine.clock t.alloc_cost;
  let s = space_of t asid in
  let bytes = round_bytes bytes in
  (* First fit in the gaps, else bump the frontier. *)
  let va =
    let sorted = List.sort (fun a b -> compare a.va b.va) s.regions in
    let rec gaps cursor = function
      | [] -> cursor
      | r :: rest ->
        if r.va - cursor >= bytes then cursor else gaps (r.va + r.bytes) rest in
    gaps base_va sorted in
  let va = if List.exists (overlaps va bytes) s.regions then s.next_va else va in
  let region = { va; bytes; asid; owner } in
  s.regions <- region :: s.regions;
  s.next_va <- max s.next_va (va + bytes);
  Capability.mint ~owner:"VirtAddr" region

let allocate_at t ~asid ~owner ~va ~bytes =
  if bytes <= 0 || va < 0 || va land Addr.page_mask <> 0 then
    invalid_arg "VirtAddr.allocate_at: bad placement";
  Clock.charge t.machine.Machine.clock t.alloc_cost;
  let s = space_of t asid in
  let bytes = round_bytes bytes in
  if List.exists (overlaps va bytes) s.regions then None
  else begin
    let region = { va; bytes; asid; owner } in
    s.regions <- region :: s.regions;
    s.next_va <- max s.next_va (va + bytes);
    Some (Capability.mint ~owner:"VirtAddr" region)
  end

let deallocate t vaddr =
  match Capability.deref_opt vaddr with
  | None -> ()
  | Some region ->
    let s = space_of t region.asid in
    s.regions <- List.filter (fun r -> r <> region) s.regions;
    Capability.revoke vaddr

let region = Capability.deref

let npages r = Addr.round_up_pages r.bytes

let allocated_bytes t ~asid =
  List.fold_left (fun acc r -> acc + r.bytes) 0 (space_of t asid).regions
