module Addr = Spin_machine.Addr

type t = {
  vm : Vm.t;
  ext : Vm_ext.t;
  mutable dirty : int list;                (* newest first *)
  mutable armed : int list;
  mutable faults : int;
}

let create vm ext =
  let t = { vm; ext; dirty = []; armed = []; faults = 0 } in
  Vm_ext.on_protection_fault ext (fun page ->
    t.faults <- t.faults + 1;
    if not (List.mem page t.dirty) then t.dirty <- page :: t.dirty;
    (* Log, then open the page: subsequent stores are free. *)
    Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write);
  t

let protect_pages t pages =
  List.iter
    (fun page -> Vm_ext.protect t.ext ~first:page ~count:1 Addr.prot_read)
    pages

let arm t ~pages =
  t.armed <- pages;
  t.dirty <- [];
  protect_pages t pages

let rearm t =
  protect_pages t (List.rev t.dirty);
  t.dirty <- []

let dirty_pages t = List.rev t.dirty

let faults_taken t = t.faults
