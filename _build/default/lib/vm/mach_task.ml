module Addr = Spin_machine.Addr

type t = {
  mgr : Addr_space.mgr;
  space : Addr_space.t;
}

let create mgr ~name = { mgr; space = Addr_space.create mgr ~name }

let task_self t = Addr_space.context t.space

let vm_allocate t ~size = Addr_space.allocate t.space ~bytes:size

let vm_deallocate t ~address = Addr_space.free t.space ~va:address

let vm_protect t ~address ~size prot =
  let trans = (Addr_space.vm t.mgr).Vm.trans in
  Translation.protect trans (Addr_space.context t.space)
    ~va:address ~npages:(Addr.round_up_pages size) prot

let fork_task t ~name =
  { mgr = t.mgr; space = Addr_space.copy t.mgr t.space ~name }

let destroy t = Addr_space.destroy t.space

let space t = t.space
