(** The virtual address service (paper, Figure 3).

    Allocates capabilities for virtual address regions; a region is a
    virtual address, a length, and the address-space identifier that
    makes the address unique. *)

type t

type region = {
  va : int;
  bytes : int;
  asid : int;
  owner : string;
}

type vaddr = region Spin_core.Capability.t

val create : Spin_machine.Machine.t -> t

val allocate : t -> asid:int -> owner:string -> bytes:int -> vaddr
(** Page-aligned, sized up to whole pages. Addresses are unique within
    the address space. *)

val allocate_at : t -> asid:int -> owner:string -> va:int -> bytes:int -> vaddr option
(** Fixed-address allocation (for UNIX-style exec layouts); [None] if
    the range overlaps an existing allocation. *)

val deallocate : t -> vaddr -> unit

val region : vaddr -> region

val npages : region -> int

val allocated_bytes : t -> asid:int -> int
