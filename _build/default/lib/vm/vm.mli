(** The assembled virtual memory system: the three services of
    Figure 3 plus trap routing. *)

type t = {
  machine : Spin_machine.Machine.t;
  dispatcher : Spin_core.Dispatcher.t;
  phys : Phys_addr.t;
  virt : Virt_addr.t;
  trans : Translation.t;
}

val create :
  ?trans_costs:Translation.costs ->
  Spin_machine.Machine.t -> Spin_core.Dispatcher.t -> t

val handle_trap : t -> Spin_machine.Cpu.trap -> bool
(** Routes memory faults into translation events; [false] for traps
    this subsystem does not own. *)

val install_trap_handler : t -> unit
(** Standalone wiring (tests, examples without the full kernel):
    makes the CPU deliver memory faults to {!handle_trap}; unhandled
    trap kinds return [-1]. *)
