(** The physical address service (paper, Figure 3).

    Controls use and allocation of physical pages. Clients receive a
    capability for the memory, never a frame number — a physical page
    "is not a nameable entity" outside the service. Allocation takes
    attributes expressing machine-specific preferences (page color for
    cache placement, contiguity). When memory runs low the service
    raises the [PhysAddr.Reclaim] event; a handler may volunteer an
    alternative page of lesser importance. *)

type t

type run = {
  first_pfn : int;              (** visible only to sibling services *)
  npages : int;
  owner : string;
}
(** A run of one or more physically contiguous frames. *)

type attrib = {
  color : int option;           (** pfn mod colors, for cache placement *)
  contiguous : bool;            (** require physically adjacent frames *)
}

val default_attrib : attrib

type page = run Spin_core.Capability.t

exception Out_of_memory

val create :
  ?colors:int -> Spin_machine.Machine.t -> Spin_core.Dispatcher.t -> t
(** [colors] is the cache-color modulus (default 8). *)

val allocate : ?attrib:attrib -> t -> owner:string -> bytes:int -> page
(** Allocates enough frames to cover [bytes]. When the free pool is
    exhausted, raises the Reclaim event to find a victim before
    giving up with {!Out_of_memory}. *)

val deallocate : t -> page -> unit
(** Returns the frames and revokes the capability. Idempotent. *)

val reclaim_event : t -> (page, page) Spin_core.Dispatcher.event
(** [Reclaim] carries the candidate page; handlers may return an
    alternative. *)

val set_invalidate : t -> (page -> unit) -> unit
(** Installed by the translation service: invalidate any mappings to
    a page being reclaimed. *)

val force_reclaim : t -> page option
(** Reclaims one victim page now (for tests and memory pressure).
    The returned page has been invalidated and freed. *)

val total_pages : t -> int

val free_pages : t -> int

val page_run : page -> run
(** Sibling-service access to the frame numbers. Raises
    [Capability.Revoked] on a dead capability. *)

val zero : t -> page -> unit
(** Zero-fill the pages (charging the copy cost). *)
