module Addr = Spin_machine.Addr
module Cpu = Spin_machine.Cpu
module Machine = Spin_machine.Machine
module Dispatcher = Spin_core.Dispatcher

type t = {
  vm : Vm.t;
  app : string;
  ctx : Translation.context;
  vaddr : Virt_addr.vaddr;
  page : Phys_addr.page;                   (* contiguous run backing it *)
  npages : int;
  mutable user_proc : (int -> unit) option;
  mutable handler : (Translation.fault, unit) Dispatcher.handler option;
  mutable faults : int;
}

let create vm ~app ~pages =
  if pages <= 0 then invalid_arg "Vm_ext.create: no pages";
  let ctx = Translation.create_context vm.Vm.trans ~owner:app in
  let vaddr =
    Virt_addr.allocate vm.Vm.virt ~asid:(Translation.context_id ctx)
      ~owner:app ~bytes:(pages * Addr.page_size) in
  let page =
    Phys_addr.allocate vm.Vm.phys
      ~attrib:{ Phys_addr.color = None; contiguous = true }
      ~owner:app ~bytes:(pages * Addr.page_size) in
  Phys_addr.zero vm.Vm.phys page;
  Translation.add_mapping vm.Vm.trans ctx vaddr page Addr.prot_read_write;
  { vm; app; ctx; vaddr; page; npages = pages;
    user_proc = None; handler = None; faults = 0 }

let context t = t.ctx

let base_va t = (Virt_addr.region t.vaddr).Virt_addr.va

let va_of_page t i =
  if i < 0 || i >= t.npages then invalid_arg "Vm_ext.va_of_page: out of range";
  base_va t + (i * Addr.page_size)

let activate t =
  Cpu.set_context t.vm.Vm.machine.Machine.cpu
    (Some (Translation.mmu_context t.ctx))

let read t ~page = Cpu.load_word t.vm.Vm.machine.Machine.cpu ~va:(va_of_page t page)

let write t ~page v = Cpu.store_word t.vm.Vm.machine.Machine.cpu ~va:(va_of_page t page) v

let dirty t ~page = Translation.is_dirty t.vm.Vm.trans t.ctx ~va:(va_of_page t page)

let protect t ~first ~count prot =
  ignore (Translation.protect t.vm.Vm.trans t.ctx ~va:(va_of_page t first)
            ~npages:count prot)

let clear_fault_handler t =
  (match t.handler with
   | Some h -> Dispatcher.uninstall (Translation.protection_fault t.vm.Vm.trans) h
   | None -> ());
  t.handler <- None;
  t.user_proc <- None

let on_protection_fault t proc =
  clear_fault_handler t;
  t.user_proc <- Some proc;
  let h =
    Dispatcher.install_exn (Translation.protection_fault t.vm.Vm.trans)
      ~installer:t.app
      ~guard:(fun f ->
        Translation.context_id f.Translation.ctx = Translation.context_id t.ctx)
      (fun f ->
        t.faults <- t.faults + 1;
        let page = (f.Translation.va - base_va t) / Addr.page_size in
        match t.user_proc with
        | Some proc -> proc page
        | None -> ()) in
  t.handler <- Some h

let destroy t =
  clear_fault_handler t;
  Translation.remove_mapping t.vm.Vm.trans t.ctx t.vaddr;
  Phys_addr.deallocate t.vm.Vm.phys t.page;
  Virt_addr.deallocate t.vm.Vm.virt t.vaddr;
  Translation.destroy_context t.vm.Vm.trans t.ctx

let faults_taken t = t.faults
