(** Operating-system path-length constants for the baseline models.

    These are *structural* software overheads (in cycles) layered on
    the shared hardware cost model: what a monolithic UNIX or a
    microkernel executes beyond the raw traps, copies and context
    switches that the simulated machine already charges. SPIN has no
    equivalent table — its paths are the real code in [spin_core] and
    friends.

    Calibration targets are the baseline columns of Tables 2-6 of the
    paper; see EXPERIMENTS.md for the resulting numbers. *)

type t = {
  os_name : string;
  syscall_dispatch : int;
  (** generic trap-to-handler layer beyond the hardware trap *)
  socket_op : int;
  (** socket-layer bookkeeping per cross-address-space RPC leg *)
  net_socket_send : int;
  (** socket work per datagram sent by an application *)
  net_socket_recv : int;
  (** socket work per datagram delivered to an application *)
  sunrpc_marshal : int;
  (** SUN RPC stub work per call leg (OSF/1 cross-address-space) *)
  message_ipc : int;
  (** one-way protected message (Mach's optimized RPC path) *)
  signal_path : int;
  (** deliver a signal to a user handler (fault reflection, OSF) *)
  exception_msg : int;
  (** deliver an exception message to a user handler (Mach) *)
  sigreturn : int;
  (** return from a user fault handler and retry *)
  pager_reply : int;
  (** external-pager lock/supply reply granting access (Mach) *)
  vm_layer_base : int;
  (** generic vm_map/vm_object work to start a protection change *)
  vm_layer_per_page : int;
  (** ditto, per page *)
  lazy_unprotect : bool;
  (** Mach evaluates unprotection lazily (Table 4's cheap Unprot100) *)
  thread_create_extra : int;
  (** kernel thread creation beyond SPIN's strand spawn *)
  thread_sync_extra : int;
  (** kernel-thread block/wakeup bookkeeping per operation *)
  user_fork_layer : int;
  (** user-level thread library work to create/join a thread *)
  user_sync_layer : int;
  (** user-level thread library work per synchronization operation *)
  user_thread_syscalls : int;
  (** user/kernel crossings a user-level thread op needs *)
  process_wakeup : int;
  (** wake a user process blocked in the kernel (select/recv) *)
}

val osf1 : t

val mach3 : t
