lib/baseline/bl_kernel.mli: Os_costs Spin_machine Spin_sched
