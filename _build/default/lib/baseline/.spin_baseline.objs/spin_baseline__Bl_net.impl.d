lib/baseline/bl_net.ml: Bl_path Bytes Hashtbl Host Ip Os_costs Spin_machine Spin_net Tcp Udp
