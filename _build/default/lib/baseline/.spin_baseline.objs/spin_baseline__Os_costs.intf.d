lib/baseline/os_costs.mli:
