lib/baseline/os_costs.ml:
