lib/baseline/bl_path.mli: Os_costs Spin_machine
