lib/baseline/bl_path.ml: Os_costs Spin_machine
