lib/baseline/bl_kernel.ml: Bl_path Os_costs Spin_core Spin_machine Spin_sched
