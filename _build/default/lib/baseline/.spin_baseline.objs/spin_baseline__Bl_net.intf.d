lib/baseline/bl_net.mli: Bytes Os_costs Spin_core Spin_machine Spin_net
