(** A baseline (non-extensible) operating system kernel model:
    DEC OSF/1 or Mach 3.0, depending on the cost table it is built
    with.

    Everything runs on the same simulated machine as SPIN — the same
    traps, MMU operations, context switches and copies — plus the
    OS-specific software layers from {!Os_costs}. The Table 2-4
    operations below *execute* their paths (real MMU changes, real
    strand switches), so they scale structurally; nothing is a single
    hard-coded total. *)

type t

val create : ?mem_mb:int -> Os_costs.t -> name:string -> t

val machine : t -> Spin_machine.Machine.t

val sched : t -> Spin_sched.Sched.t

val costs : t -> Os_costs.t

val elapsed_us : t -> float

val stamp_us : t -> (unit -> unit) -> float
(** Virtual microseconds consumed by the thunk. *)

(* -------------------- Table 2: protected communication ------------ *)

val null_syscall : t -> unit
(** Hardware trap + the OS's generic dispatch layer. *)

val cross_address_space_call : t -> unit
(** One null cross-address-space RPC: OSF/1 goes through sockets and
    SUN RPC; Mach through its optimized message path. Both pay real
    address-space switches on the machine. *)

(* -------------------- Table 3: thread management ------------------ *)

val fork_join : t -> user:bool -> unit
(** Create, schedule and terminate one thread, synchronizing the
    termination (runs on real strands plus the OS overheads;
    [user:true] adds the user-level library layer and its
    user/kernel crossings). Must run inside {!in_kernel_thread}. *)

val ping_pong : t -> user:bool -> iters:int -> unit
(** [iters] synchronization round trips between two threads. *)

val in_kernel_thread : t -> (unit -> unit) -> unit
(** Run the thunk on a kernel thread of this OS and drive the
    simulation to completion. *)

(* -------------------- Table 4: virtual memory ---------------------- *)

val vm_setup : t -> pages:int -> unit
(** Map a fresh region of [pages] pages read-write (the benchmark
    arena). *)

val vm_protect : t -> first:int -> count:int -> writable:bool -> unit
(** Change protection from user level: syscall + generic VM layer +
    real MMU updates. Mach's lazy unprotection skips the eager MMU
    work. *)

val vm_fault_total : t -> unit
(** The "Fault" row: take a write fault on a protected page, deliver
    it to a user handler (signal / exception message), re-enable in
    the handler, resume and retry. *)

val vm_trap_latency : t -> float
(** The "Trap" row: virtual us from fault to first user-handler
    instruction. *)

val vm_appel1 : t -> unit
(** Fault on a protected page; in the handler unprotect it and
    protect another. *)

val vm_appel2_per_page : t -> pages:int -> float
(** Protect [pages] pages, fault on each, resolving in the handler;
    returns average us per page. *)

(* -------------------- Tables 5-6: user-level networking ----------- *)

val user_net_send_overhead : t -> bytes:int -> unit
(** What the OS charges between an application send and the protocol
    stack: syscall, copyin, socket-layer work. *)

val user_net_recv_overhead : t -> bytes:int -> unit
(** Between packet arrival and the application: wakeup, copyout,
    syscall return, socket work. *)
