(** Shared path-cost helpers for the baseline models: the charges an
    application on a conventional OS pays at the user/kernel boundary,
    parameterized by the hardware clock and the OS cost table. *)

val null_syscall : Spin_machine.Clock.t -> Os_costs.t -> unit

val copy_cost : Spin_machine.Clock.t -> bytes:int -> int

val user_send_overhead : Spin_machine.Clock.t -> Os_costs.t -> bytes:int -> unit
(** Application send to protocol stack: syscall, copyin, socket work. *)

val user_recv_overhead : Spin_machine.Clock.t -> Os_costs.t -> bytes:int -> unit
(** Packet arrival to application: socket work, process wakeup,
    copyout, syscall return. *)
