module Machine = Spin_machine.Machine
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Cpu = Spin_machine.Cpu
module Mmu = Spin_machine.Mmu
module Addr = Spin_machine.Addr
module Dispatcher = Spin_core.Dispatcher
module Sched = Spin_sched.Sched
module Kthread = Spin_sched.Kthread

type t = {
  os : Os_costs.t;
  machine : Machine.t;
  dispatcher : Dispatcher.t;
  sched : Sched.t;
  (* Two translation contexts stand in for two processes (client and
     server of the cross-address-space call). *)
  ctx_a : Mmu.context;
  ctx_b : Mmu.context;
  (* The VM benchmark arena. *)
  mutable arena : Mmu.context option;
  mutable arena_pages : int;
}

let create ?(mem_mb = 16) os ~name =
  let machine = Machine.create ~mem_mb ~name () in
  let dispatcher = Dispatcher.create machine.Machine.clock in
  let sched = Sched.create machine.Machine.sim dispatcher in
  let ctx_a = Mmu.create_context machine.Machine.mmu in
  let ctx_b = Mmu.create_context machine.Machine.mmu in
  { os; machine; dispatcher; sched; ctx_a; ctx_b;
    arena = None; arena_pages = 0 }

let machine t = t.machine

let sched t = t.sched

let costs t = t.os

let clock t = t.machine.Machine.clock

let charge t c = Clock.charge (clock t) c

let elapsed_us t = Clock.now_us (clock t)

let stamp_us t f =
  Cost.cycles_to_us t.machine.Machine.cost (Clock.stamp (clock t) f)

let hw t = t.machine.Machine.cost

(* -------------------- Table 2 ------------------------------------- *)

let trap_cost t = (hw t).Cost.trap_entry + (hw t).Cost.trap_exit

let null_syscall t = Bl_path.null_syscall (clock t) t.os

let switch_to t ctx = Cpu.set_context t.machine.Machine.cpu (Some ctx)

let cross_address_space_call t =
  let os = t.os in
  if os.Os_costs.message_ipc > 0 then begin
    (* Mach: trap, message to the server, address-space switch, server
       replies the same way. *)
    null_syscall t;
    charge t os.Os_costs.message_ipc;
    switch_to t t.ctx_b;
    null_syscall t;
    charge t os.Os_costs.message_ipc;
    switch_to t t.ctx_a
  end else begin
    (* OSF/1: socket write + SUN RPC marshalling, server reads from its
       socket, replies along the reverse path. *)
    null_syscall t;                        (* send *)
    charge t os.Os_costs.sunrpc_marshal;
    charge t os.Os_costs.socket_op;
    charge t os.Os_costs.process_wakeup;
    switch_to t t.ctx_b;
    null_syscall t;                        (* server recv returns *)
    charge t os.Os_costs.socket_op;
    null_syscall t;                        (* server reply send *)
    charge t os.Os_costs.sunrpc_marshal;
    charge t os.Os_costs.socket_op;
    charge t os.Os_costs.process_wakeup;
    switch_to t t.ctx_a;
    null_syscall t;                        (* client recv returns *)
    charge t os.Os_costs.socket_op
  end

(* -------------------- Table 3 ------------------------------------- *)

let user_crossing_cost t =
  t.os.Os_costs.user_thread_syscalls
  * (trap_cost t + t.os.Os_costs.syscall_dispatch)

let fork_join t ~user =
  if user then begin
    charge t t.os.Os_costs.user_fork_layer;
    charge t (user_crossing_cost t)
  end;
  charge t t.os.Os_costs.thread_create_extra;
  let child = Kthread.fork t.sched (fun () -> ()) in
  if user then charge t (user_crossing_cost t);
  Kthread.join t.sched child

let ping_pong t ~user ~iters =
  let mu = Kthread.Mutex.create () in
  let cond = Kthread.Condition.create () in
  let turn = ref `Ping in
  let extra () =
    charge t t.os.Os_costs.thread_sync_extra;
    if user then begin
      charge t t.os.Os_costs.user_sync_layer;
      charge t (user_crossing_cost t)
    end in
  let player me other () =
    Kthread.Mutex.lock t.sched mu;
    for _ = 1 to iters do
      while !turn <> me do
        extra ();
        Kthread.Condition.wait t.sched mu cond
      done;
      turn := other;
      extra ();
      Kthread.Condition.signal t.sched cond
    done;
    Kthread.Mutex.unlock t.sched mu in
  let a = Kthread.fork t.sched (player `Ping `Pong) in
  let b = Kthread.fork t.sched (player `Pong `Ping) in
  Kthread.join t.sched a;
  Kthread.join t.sched b

let in_kernel_thread t body =
  ignore (Sched.spawn t.sched ~name:(t.os.Os_costs.os_name ^ "-bench") body);
  Sched.run t.sched

(* -------------------- Table 4 ------------------------------------- *)

let arena t =
  match t.arena with
  | Some ctx -> ctx
  | None -> invalid_arg "Bl_kernel: call vm_setup first"

let vm_setup t ~pages =
  let mmu = t.machine.Machine.mmu in
  let ctx = Mmu.create_context mmu in
  for i = 0 to pages - 1 do
    Mmu.map mmu ctx ~vpn:i ~pfn:(i + 8) ~prot:Addr.prot_read_write
  done;
  t.arena <- Some ctx;
  t.arena_pages <- pages;
  Cpu.set_context t.machine.Machine.cpu (Some ctx)

let vm_protect t ~first ~count ~writable =
  let os = t.os in
  null_syscall t;
  charge t os.Os_costs.vm_layer_base;
  let prot = if writable then Addr.prot_read_write else Addr.prot_read in
  let ctx = arena t in
  if writable && os.Os_costs.lazy_unprotect then
    (* Mach defers the hardware update; only the map entry changes.
       Charge the per-page bookkeeping at a fraction. *)
    charge t (count * (os.Os_costs.vm_layer_per_page / 8))
  else
    for i = first to first + count - 1 do
      charge t os.Os_costs.vm_layer_per_page;
      ignore (Mmu.protect t.machine.Machine.mmu ctx ~vpn:i ~prot)
    done;
  if writable && os.Os_costs.lazy_unprotect then
    (* The pages become writable on next fault; apply them now without
       charging (the hardware work happens lazily, off this path). *)
    for i = first to first + count - 1 do
      ignore (Mmu.protect ~charge:false t.machine.Machine.mmu ctx ~vpn:i ~prot)
    done

let reflect_fault_to_user t =
  (* Hardware fault, kernel classification, then the OS's user-level
     delivery mechanism. *)
  charge t (hw t).Cost.trap_entry;
  charge t t.os.Os_costs.syscall_dispatch;
  if t.os.Os_costs.exception_msg > 0 then charge t t.os.Os_costs.exception_msg
  else charge t t.os.Os_costs.signal_path

let resume_from_user t =
  (* Mach resumes a fault through the external pager's lock/supply
     reply; OSF through sigreturn. *)
  charge t t.os.Os_costs.pager_reply;
  charge t t.os.Os_costs.sigreturn;
  charge t (hw t).Cost.trap_exit

let vm_trap_latency t =
  stamp_us t (fun () -> reflect_fault_to_user t)

let do_user_level_protect t ~first ~count ~writable =
  (* From inside a user fault handler the protect is still a syscall;
     on Mach it is a lock request through the pager interface, which
     costs extra messages. *)
  if t.os.Os_costs.pager_reply > 0 then
    charge t (3 * t.os.Os_costs.message_ipc);
  vm_protect t ~first ~count ~writable

let vm_fault_total t =
  reflect_fault_to_user t;
  (* OSF's handler enables access explicitly (mprotect); Mach's pager
     grants it in the resume reply itself. *)
  if t.os.Os_costs.pager_reply = 0 then
    do_user_level_protect t ~first:0 ~count:1 ~writable:true;
  resume_from_user t;
  (* The faulting access retries. *)
  charge t (hw t).Cost.mem_access

let vm_appel1 t =
  reflect_fault_to_user t;
  do_user_level_protect t ~first:0 ~count:1 ~writable:true;
  do_user_level_protect t ~first:1 ~count:1 ~writable:false;
  resume_from_user t;
  charge t (hw t).Cost.mem_access

let vm_appel2_per_page t ~pages =
  let us =
    stamp_us t (fun () ->
      vm_protect t ~first:0 ~count:pages ~writable:false;
      for i = 0 to pages - 1 do
        reflect_fault_to_user t;
        do_user_level_protect t ~first:i ~count:1 ~writable:true;
        resume_from_user t;
        charge t (hw t).Cost.mem_access
      done) in
  us /. float_of_int pages

(* -------------------- Tables 5-6 ---------------------------------- *)

let user_net_send_overhead t ~bytes =
  Bl_path.user_send_overhead (clock t) t.os ~bytes

let user_net_recv_overhead t ~bytes =
  Bl_path.user_recv_overhead (clock t) t.os ~bytes
