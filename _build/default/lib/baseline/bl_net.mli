(** A networking host running a conventional (monolithic) OS.

    The wire, NICs, drivers and in-kernel protocol stack are the very
    same modules SPIN uses — the paper deliberately shares the vendor
    drivers between systems. What differs is structure: applications
    live at user level, so every send pays a syscall, a copy across
    the boundary and socket bookkeeping, and every receive pays socket
    work, a process wakeup, a copy out and a syscall return. *)

type t

val create :
  Spin_machine.Sim.t -> name:string -> addr:Spin_net.Ip.addr ->
  Os_costs.t -> t

val host : t -> Spin_net.Host.t
(** The underlying stack (for wiring links and kernel-side setup). *)

val udp_send_from_user :
  t -> ?src_port:int -> dst:Spin_net.Ip.addr -> port:int -> Bytes.t -> bool

val udp_listen_user :
  t -> port:int -> (Spin_net.Udp.datagram -> unit) ->
  (Spin_net.Udp.datagram, unit) Spin_core.Dispatcher.handler
(** The callback models the application: the user-boundary receive
    overhead is charged before it runs. *)

val tcp_connect_from_user :
  t -> dst:Spin_net.Ip.addr -> dst_port:int -> Spin_net.Tcp.conn option

val tcp_send_from_user : t -> Spin_net.Tcp.conn -> Bytes.t -> unit

val tcp_read_to_user : t -> Spin_net.Tcp.conn -> Bytes.t

val user_splice_forwarder :
  t -> port:int -> to_:Spin_net.Ip.addr -> to_port:int -> unit
(** The user-level UDP forwarder of Table 6: a process that receives
    each datagram at user level and re-sends it — two boundary
    crossings and two stack traversals per packet, and (for TCP) no
    preservation of end-to-end control traffic. *)
