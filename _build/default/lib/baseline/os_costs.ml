(* Calibrated against the DEC OSF/1 V2.1 and Mach 3.0 columns of the
   paper's tables on the same 133 cycles/us clock. *)

type t = {
  os_name : string;
  syscall_dispatch : int;
  socket_op : int;
  net_socket_send : int;
  net_socket_recv : int;
  sunrpc_marshal : int;
  message_ipc : int;
  signal_path : int;
  exception_msg : int;
  sigreturn : int;
  pager_reply : int;
  vm_layer_base : int;
  vm_layer_per_page : int;
  lazy_unprotect : bool;
  thread_create_extra : int;
  thread_sync_extra : int;
  user_fork_layer : int;
  user_sync_layer : int;
  user_thread_syscalls : int;
  process_wakeup : int;
}

let osf1 = {
  os_name = "DEC OSF/1";
  syscall_dispatch = 255;          (* 5 us syscall total (Table 2) *)
  socket_op = 15_800;              (* sockets + SUN RPC give 845 us *)
  net_socket_send = 4_400;         (* per-packet socket work: Table 5 *)
  net_socket_recv = 6_000;
  sunrpc_marshal = 19_500;
  message_ipc = 0;
  signal_path = 33_500;            (* 260 us fault-to-handler (Table 4) *)
  exception_msg = 0;
  sigreturn = 3_100;               (* Fault = 329 us total *)
  pager_reply = 0;
  vm_layer_base = 4_265;           (* Prot1 = 45 us *)
  vm_layer_per_page = 1_180;       (* Prot100 = 1041 us *)
  lazy_unprotect = false;
  thread_create_extra = 23_800;    (* Fork-Join 198 us (Table 3) *)
  thread_sync_extra = 70;          (* Ping-Pong 21 us *)
  user_fork_layer = 130_000;       (* P-threads fork-join: 1230 us *)
  user_sync_layer = 7_200;         (* P-threads ping-pong: 264 us *)
  user_thread_syscalls = 2;
  process_wakeup = 2_600;
}

let mach3 = {
  os_name = "Mach 3.0";
  syscall_dispatch = 521;          (* 7 us syscall *)
  socket_op = 0;
  net_socket_send = 0;
  net_socket_recv = 0;
  sunrpc_marshal = 0;
  message_ipc = 4_600;             (* 104 us cross-address-space call *)
  signal_path = 0;
  exception_msg = 22_500;          (* 185 us fault-to-handler (Trap row) *)
  sigreturn = 2_000;
  pager_reply = 28_600;            (* Fault = 415 us via the external pager *)
  vm_layer_base = 11_300;          (* Prot1 = 106 us *)
  vm_layer_per_page = 2_100;       (* Prot100 = 1792 us *)
  lazy_unprotect = true;           (* Unprot100 = 302 us *)
  thread_create_extra = 10_870;     (* Fork-Join 101 us *)
  thread_sync_extra = 1_700;       (* Ping-Pong 71 us *)
  user_fork_layer = 29_600;        (* C-Threads fork-join: 338 us *)
  user_sync_layer = 530;           (* C-Threads ping-pong: 115 us *)
  user_thread_syscalls = 1;
  process_wakeup = 2_600;
}
