(** Address arithmetic and protection bits for the simulated Alpha.

    Pages are 8 KB as on the Alpha AXP. Virtual and physical addresses
    are plain integers; these helpers keep page arithmetic in one
    place. *)

val page_size : int
(** 8192 bytes. *)

val page_shift : int

val page_mask : int

type prot = { read : bool; write : bool; execute : bool }

val prot_none : prot
val prot_read : prot
val prot_read_write : prot
val prot_all : prot

val prot_allows : prot -> [ `Read | `Write | `Execute ] -> bool

val prot_to_string : prot -> string
(** e.g. ["rw-"]. *)

val vpn_of_va : int -> int
(** Virtual page number containing a virtual address. *)

val offset_of_va : int -> int

val va_of_vpn : int -> int

val page_of_pa : int -> int

val pa_of_page : int -> int

val round_up_pages : int -> int
(** [round_up_pages bytes] is the number of pages covering [bytes]. *)
