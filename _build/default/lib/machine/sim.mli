(** Discrete-event engine.

    Devices and timers schedule callbacks at absolute virtual times.
    Events become *due* when the clock passes their deadline; they are
    fired from a clock hook, which models interrupt delivery at the
    next instruction boundary. When no strand is runnable the machine
    idles by skipping the clock to the next deadline. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : Clock.t -> t

val clock : t -> Clock.t

val now : t -> int

val at : t -> int -> (unit -> unit) -> handle
(** [at t time f] schedules [f] at absolute cycle [time] (clamped to
    now). *)

val after : t -> int -> (unit -> unit) -> handle
(** [after t delta f] schedules [f] [delta] cycles from now. *)

val after_us : t -> float -> (unit -> unit) -> handle

val cancel : t -> handle -> unit
(** Cancels a pending event; no-op if already fired or cancelled. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

val next_deadline : t -> int option

val idle_step : t -> bool
(** [idle_step t] skips the clock to the next deadline so its events
    fire; [false] when nothing is pending. *)

val run : t -> unit
(** [idle_step] until the queue drains. *)

val quiesce : t -> unit
(** Fire everything already due at the current time. *)
