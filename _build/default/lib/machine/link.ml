type endpoint = A | B

type t = {
  sim : Sim.t;
  latency_us : float;
  frame_overhead : int;
  mbps : float;
  mutable rx_a : (Bytes.t -> unit) option;
  mutable rx_b : (Bytes.t -> unit) option;
  mutable busy_until_ab : int;   (* cycles: wire free time, A->B direction *)
  mutable busy_until_ba : int;
  mutable frames : int;
  mutable bytes : int;
  mutable loss_every : int;               (* 0 = lossless *)
  mutable dropped : int;
}

let create sim ?(latency_us = 5.) ?(frame_overhead = 42) ~mbps () =
  if mbps <= 0. then invalid_arg "Link.create: bad line rate";
  { sim; latency_us; frame_overhead; mbps;
    rx_a = None; rx_b = None; busy_until_ab = 0; busy_until_ba = 0;
    frames = 0; bytes = 0; loss_every = 0; dropped = 0 }

let mbps t = t.mbps

let set_receiver t ep f =
  match ep with
  | A -> t.rx_a <- Some f
  | B -> t.rx_b <- Some f

let serialization_us t len =
  float_of_int ((len + t.frame_overhead) * 8) /. t.mbps

let send t ~from frame =
  let clock = Sim.clock t.sim in
  let cost = Clock.cost clock in
  let ser = Cost.us_to_cycles cost (serialization_us t (Bytes.length frame)) in
  let lat = Cost.us_to_cycles cost t.latency_us in
  let busy = match from with A -> t.busy_until_ab | B -> t.busy_until_ba in
  let start = max (Clock.now clock) busy in
  let done_tx = start + ser in
  (match from with
   | A -> t.busy_until_ab <- done_tx
   | B -> t.busy_until_ba <- done_tx);
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  if t.loss_every > 0 && t.frames mod t.loss_every = 0 then
    t.dropped <- t.dropped + 1
  else
  let deliver () =
    let rx = match from with A -> t.rx_b | B -> t.rx_a in
    match rx with
    | None -> ()                               (* unplugged: frame lost *)
    | Some f -> f frame in
  ignore (Sim.at t.sim (done_tx + lat) deliver)

let set_loss t ~every =
  if every < 0 then invalid_arg "Link.set_loss";
  t.loss_every <- every

let frames_dropped t = t.dropped

let frames_sent t = t.frames

let bytes_sent t = t.bytes
