(** A simulated SCSI disk (HP C2247-300 by default: ~10 ms average
    seek, 5400 rpm, ~2.5 MB/s sustained transfer).

    Requests queue FIFO inside the device; each completion posts the
    disk's interrupt line and parks a completion record for the driver
    to collect. Sequential requests skip the seek. *)

type t

type completion =
  | Read_done of { block : int; count : int; data : Bytes.t }
  | Write_done of { block : int; count : int }

val block_size : int
(** 512 bytes. *)

val create :
  ?seek_us:float -> ?rotation_us:float -> ?bytes_per_us:float ->
  Sim.t -> Intr.t -> line:int -> blocks:int -> t

val blocks : t -> int

val line : t -> int

val submit_read : t -> block:int -> count:int -> unit
(** Queue a read of [count] blocks starting at [block]. *)

val submit_write : t -> block:int -> Bytes.t -> unit
(** Queue a write; the data length must be a multiple of the block
    size. *)

val take_completion : t -> completion option
(** Driver side: collect a finished request (typically from the
    interrupt handler). *)

val in_flight : t -> int

val reads : t -> int

val writes : t -> int
