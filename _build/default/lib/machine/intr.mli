(** The interrupt controller.

    Devices post interrupts on numbered lines; a posted line runs its
    registered handler immediately (charging entry/exit costs) unless
    interrupts are masked, in which case it is latched and delivered
    on unmask. *)

type t

val create : Clock.t -> t

val register : t -> line:int -> (unit -> unit) -> unit
(** Replaces any previous handler on [line]. *)

val post : t -> line:int -> unit
(** Raises the line. Unhandled lines are counted as spurious. *)

val with_masked : t -> (unit -> 'a) -> 'a
(** Runs the critical section with interrupts masked; pending lines
    are delivered afterwards. Nestable. *)

val masked : t -> bool

val delivered : t -> int
(** Total interrupts delivered since boot. *)

val spurious : t -> int
