type t = {
  cost : Cost.t;
  mutable now : int;
  mutable hooks : (t -> unit) list;
  mutable in_hook : bool;
  mutable idle : int;
}

let create cost = { cost; now = 0; hooks = []; in_hook = false; idle = 0 }

let cost t = t.cost

let now t = t.now

let now_us t = Cost.cycles_to_us t.cost t.now

let run_hooks t =
  if not t.in_hook then begin
    t.in_hook <- true;
    Fun.protect ~finally:(fun () -> t.in_hook <- false)
      (fun () -> List.iter (fun f -> f t) t.hooks)
  end

let charge t c =
  if c < 0 then invalid_arg "Clock.charge: negative cycles";
  if c > 0 then begin
    t.now <- t.now + c;
    run_hooks t
  end

let charge_us t us = charge t (Cost.us_to_cycles t.cost us)

let skip_to t target =
  if target > t.now then begin
    t.idle <- t.idle + (target - t.now);
    t.now <- target;
    run_hooks t
  end

let idle_cycles t = t.idle

let add_hook t f = t.hooks <- t.hooks @ [ f ]

let stamp t f =
  let before = t.now in
  f ();
  t.now - before
