(** A point-to-point wire between two network interfaces.

    The link models serialization time (frame bits over the line
    rate), propagation latency, and wire occupancy: a frame queued
    while the wire is busy waits for it to drain. Each direction is
    independent (full duplex). *)

type t

type endpoint = A | B

val create : Sim.t -> ?latency_us:float -> ?frame_overhead:int -> mbps:float -> unit -> t
(** [frame_overhead] is per-frame framing bytes added to the payload
    when computing serialization time (preamble, CRC, inter-frame
    gap); default 42. *)

val mbps : t -> float

val set_receiver : t -> endpoint -> (Bytes.t -> unit) -> unit
(** Installs the delivery callback for frames arriving *at* that
    endpoint. *)

val send : t -> from:endpoint -> Bytes.t -> unit
(** Transmits a frame from one endpoint to the other. *)

val serialization_us : t -> int -> float
(** Wire time for a payload of the given size. *)

val set_loss : t -> every:int -> unit
(** Failure injection: drop every [every]-th frame (0 disables).
    Deterministic, so tests reproduce. *)

val frames_dropped : t -> int

val frames_sent : t -> int

val bytes_sent : t -> int
