let page_shift = 13
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type prot = { read : bool; write : bool; execute : bool }

let prot_none = { read = false; write = false; execute = false }
let prot_read = { read = true; write = false; execute = false }
let prot_read_write = { read = true; write = true; execute = false }
let prot_all = { read = true; write = true; execute = true }

let prot_allows p = function
  | `Read -> p.read
  | `Write -> p.write
  | `Execute -> p.execute

let prot_to_string p =
  Printf.sprintf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.execute then 'x' else '-')

let vpn_of_va va = va lsr page_shift
let offset_of_va va = va land page_mask
let va_of_vpn vpn = vpn lsl page_shift
let page_of_pa pa = pa lsr page_shift
let pa_of_page p = p lsl page_shift
let round_up_pages bytes = (bytes + page_size - 1) / page_size
