type t = {
  clock : Clock.t;
  frames : Bytes.t option array;
  mutable allocated : int;
}

let create clock ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: no frames";
  { clock; frames = Array.make frames None; allocated = 0 }

let frames t = Array.length t.frames

let bytes_total t = Array.length t.frames * Addr.page_size

let frame_bytes t n =
  if n < 0 || n >= Array.length t.frames then
    invalid_arg "Phys_mem: bad frame number";
  match t.frames.(n) with
  | Some b -> b
  | None ->
    let b = Bytes.make Addr.page_size '\000' in
    t.frames.(n) <- Some b;
    t.allocated <- t.allocated + 1;
    b

let charge_copy t len =
  let words = (len + 7) / 8 in
  Clock.charge t.clock (words * (Clock.cost t.clock).Cost.copy_per_word)

let zero_frame t n =
  Bytes.fill (frame_bytes t n) 0 Addr.page_size '\000';
  charge_copy t Addr.page_size

(* Walk the [len] bytes starting at [pa] frame by frame. *)
let iter_spans t ~pa ~len f =
  if pa < 0 || len < 0 || pa + len > bytes_total t then
    invalid_arg "Phys_mem: physical range out of bounds";
  let rec loop pa len off =
    if len > 0 then begin
      let frame = Addr.page_of_pa pa in
      let foff = pa land Addr.page_mask in
      let chunk = min len (Addr.page_size - foff) in
      f (frame_bytes t frame) foff off chunk;
      loop (pa + chunk) (len - chunk) (off + chunk)
    end in
  loop pa len 0

let read_bytes t ~pa ~len =
  let out = Bytes.create len in
  iter_spans t ~pa ~len (fun fb foff off chunk -> Bytes.blit fb foff out off chunk);
  charge_copy t len;
  out

let write_bytes t ~pa src =
  let len = Bytes.length src in
  iter_spans t ~pa ~len (fun fb foff off chunk -> Bytes.blit src off fb foff chunk);
  charge_copy t len

let read_word t ~pa =
  let b = Bytes.create 8 in
  iter_spans t ~pa ~len:8 (fun fb foff off chunk -> Bytes.blit fb foff b off chunk);
  Bytes.get_int64_le b 0

let write_word t ~pa v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  iter_spans t ~pa ~len:8 (fun fb foff off chunk -> Bytes.blit b off fb foff chunk)

let copy t ~src ~dst ~len =
  (* read side charges once; avoid double charge on write side *)
  let data = Bytes.create len in
  iter_spans t ~pa:src ~len (fun fb foff off chunk -> Bytes.blit fb foff data off chunk);
  iter_spans t ~pa:dst ~len (fun fb foff off chunk -> Bytes.blit data off fb foff chunk);
  charge_copy t len
