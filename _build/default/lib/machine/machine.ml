type t = {
  name : string;
  cost : Cost.t;
  clock : Clock.t;
  sim : Sim.t;
  mem : Phys_mem.t;
  mmu : Mmu.t;
  cpu : Cpu.t;
  intr : Intr.t;
  console : Console_dev.t;
  mutable disks : Disk_dev.t list;
  mutable nics : Nic.t list;
  mutable next_line : int;
}

let build sim ~mem_mb ~name =
  let clock = Sim.clock sim in
  let frames = mem_mb * 1024 * 1024 / Addr.page_size in
  let mem = Phys_mem.create clock ~frames in
  let mmu = Mmu.create clock mem in
  let cpu = Cpu.create clock mmu in
  let intr = Intr.create clock in
  let console = Console_dev.create sim intr ~line:0 in
  { name; cost = Clock.cost clock; clock; sim; mem; mmu; cpu; intr; console;
    disks = []; nics = []; next_line = 1 }

let create ?(cost = Cost.alpha_133) ?(mem_mb = 64) ~name () =
  let clock = Clock.create cost in
  let sim = Sim.create clock in
  build sim ~mem_mb ~name

let create_on sim ?(mem_mb = 64) ~name () = build sim ~mem_mb ~name

let fresh_line t =
  let line = t.next_line in
  t.next_line <- line + 1;
  line

let add_disk ?(blocks = 32768) t =
  let disk = Disk_dev.create t.sim t.intr ~line:(fresh_line t) ~blocks in
  t.disks <- t.disks @ [ disk ];
  disk

let add_nic t ~kind =
  let nic = Nic.create t.sim t.intr ~line:(fresh_line t) ~kind in
  t.nics <- t.nics @ [ nic ];
  nic

let connect a b ~kind ?(latency_us = 5.) () =
  if a.sim != b.sim then
    invalid_arg "Machine.connect: machines must share a simulation";
  let nic_a = add_nic a ~kind and nic_b = add_nic b ~kind in
  let link = Link.create a.sim ~latency_us ~mbps:(Nic.link_mbps kind) () in
  Nic.attach nic_a link Link.A;
  Nic.attach nic_b link Link.B;
  (nic_a, nic_b)

let elapsed_us t = Clock.now_us t.clock
