(** A complete simulated workstation.

    [create] builds a standalone machine with its own clock and event
    queue; [create_on] builds one sharing an existing event queue so
    that several hosts can be co-simulated on a common virtual
    timeline (used by the networking experiments). *)

type t = {
  name : string;
  cost : Cost.t;
  clock : Clock.t;
  sim : Sim.t;
  mem : Phys_mem.t;
  mmu : Mmu.t;
  cpu : Cpu.t;
  intr : Intr.t;
  console : Console_dev.t;
  mutable disks : Disk_dev.t list;
  mutable nics : Nic.t list;
  mutable next_line : int;
}

val create : ?cost:Cost.t -> ?mem_mb:int -> name:string -> unit -> t
(** Default memory: 64 MB, as in the paper's machines. *)

val create_on : Sim.t -> ?mem_mb:int -> name:string -> unit -> t

val add_disk : ?blocks:int -> t -> Disk_dev.t
(** Attaches a disk (default ~16 MB) on a fresh interrupt line. *)

val add_nic : t -> kind:Nic.kind -> Nic.t
(** Attaches a NIC on a fresh interrupt line; plug it into a link with
    {!Nic.attach}. *)

val connect : t -> t -> kind:Nic.kind -> ?latency_us:float -> unit -> Nic.t * Nic.t
(** [connect a b ~kind ()] gives each machine a NIC of [kind] and
    wires them with a link of the kind's line rate. The machines must
    share a simulation (build them with {!create_on}). *)

val elapsed_us : t -> float
