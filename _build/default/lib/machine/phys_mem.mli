(** Simulated physical memory.

    Frame storage is allocated lazily; copies into and out of memory
    charge the hardware copy cost. Frame *allocation policy* lives in
    the SPIN physical address service, not here. *)

type t

val create : Clock.t -> frames:int -> t
(** [create clock ~frames] is a memory of [frames] 8 KB frames. *)

val frames : t -> int

val bytes_total : t -> int

val frame_bytes : t -> int -> Bytes.t
(** Backing store of a frame; raises [Invalid_argument] on a bad
    frame number. *)

val zero_frame : t -> int -> unit
(** Clears a frame, charging the copy cost. *)

val read_bytes : t -> pa:int -> len:int -> Bytes.t
(** Copy [len] bytes out of physical memory (may span frames);
    charges copy cost. *)

val write_bytes : t -> pa:int -> Bytes.t -> unit
(** Copy bytes into physical memory; charges copy cost. *)

val read_word : t -> pa:int -> int64
(** Unaligned-tolerant 8-byte load; charges nothing beyond the
    caller's accounting (word access cost is part of instruction
    charges). *)

val write_word : t -> pa:int -> int64 -> unit

val copy : t -> src:int -> dst:int -> len:int -> unit
(** Physical memory to physical memory copy; charges copy cost. *)
