type t = {
  sim : Sim.t;
  intr : Intr.t;
  line : int;
  out : Buffer.t;
  input : char Spin_dstruct.Ring.t;
  mutable dropped : int;
}

let register_cost = 20 (* cycles per device-register write *)

let create sim intr ~line =
  { sim; intr; line; out = Buffer.create 256;
    input = Spin_dstruct.Ring.create 256; dropped = 0 }

let line t = t.line

let putc t c =
  Clock.charge (Sim.clock t.sim) register_cost;
  Buffer.add_char t.out c

let puts t s = String.iter (putc t) s

let output t = Buffer.contents t.out

let flush_output t =
  let s = Buffer.contents t.out in
  Buffer.clear t.out;
  s

let inject_input t s =
  String.iter
    (fun c -> if not (Spin_dstruct.Ring.push t.input c) then t.dropped <- t.dropped + 1)
    s;
  Intr.post t.intr ~line:t.line

let getc t = Spin_dstruct.Ring.pop t.input

let dropped t = t.dropped
