lib/machine/phys_mem.mli: Bytes Clock
