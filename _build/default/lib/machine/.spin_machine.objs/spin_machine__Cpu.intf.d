lib/machine/cpu.mli: Bytes Clock Mmu
