lib/machine/disk_dev.ml: Bytes Hashtbl Intr Queue Sim
