lib/machine/link.ml: Bytes Clock Cost Sim
