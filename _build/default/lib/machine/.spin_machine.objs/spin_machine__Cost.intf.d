lib/machine/cost.mli:
