lib/machine/cpu.ml: Addr Bytes Clock Cost Fun Mmu Phys_mem
