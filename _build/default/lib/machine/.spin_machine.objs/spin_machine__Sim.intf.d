lib/machine/sim.mli: Clock
