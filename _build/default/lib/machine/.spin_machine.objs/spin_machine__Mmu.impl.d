lib/machine/mmu.ml: Addr Clock Cost Hashtbl Phys_mem Queue
