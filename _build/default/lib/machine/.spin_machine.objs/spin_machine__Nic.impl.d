lib/machine/nic.ml: Bytes Clock Intr Link Sim Spin_dstruct
