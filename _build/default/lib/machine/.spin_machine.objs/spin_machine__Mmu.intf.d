lib/machine/mmu.mli: Addr Clock Phys_mem
