lib/machine/sim.ml: Clock Cost Fun List Spin_dstruct
