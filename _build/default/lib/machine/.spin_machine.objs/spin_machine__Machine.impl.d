lib/machine/machine.ml: Addr Clock Console_dev Cost Cpu Disk_dev Intr Link Mmu Nic Phys_mem Sim
