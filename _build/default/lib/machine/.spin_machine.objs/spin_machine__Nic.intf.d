lib/machine/nic.mli: Bytes Intr Link Sim
