lib/machine/clock.ml: Cost Fun List
