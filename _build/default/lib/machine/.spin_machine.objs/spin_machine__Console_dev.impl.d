lib/machine/console_dev.ml: Buffer Clock Intr Sim Spin_dstruct String
