lib/machine/intr.ml: Clock Cost Fun Hashtbl Queue
