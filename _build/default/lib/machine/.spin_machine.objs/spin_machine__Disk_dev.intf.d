lib/machine/disk_dev.mli: Bytes Intr Sim
