lib/machine/addr.ml: Printf
