lib/machine/intr.mli: Clock
