lib/machine/addr.mli:
