lib/machine/machine.mli: Clock Console_dev Cost Cpu Disk_dev Intr Mmu Nic Phys_mem Sim
