lib/machine/clock.mli: Cost
