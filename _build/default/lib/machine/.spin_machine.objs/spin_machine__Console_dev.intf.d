lib/machine/console_dev.mli: Intr Sim
