lib/machine/link.mli: Bytes Sim
