lib/machine/phys_mem.ml: Addr Array Bytes Clock Cost
