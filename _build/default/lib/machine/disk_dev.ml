let block_size = 512

type completion =
  | Read_done of { block : int; count : int; data : Bytes.t }
  | Write_done of { block : int; count : int }

type op =
  | Read of { block : int; count : int }
  | Write of { block : int; data : Bytes.t }

type t = {
  sim : Sim.t;
  intr : Intr.t;
  line : int;
  nblocks : int;
  seek_us : float;
  rotation_us : float;
  bytes_per_us : float;
  store : (int, Bytes.t) Hashtbl.t;
  queue : op Queue.t;
  completions : completion Queue.t;
  mutable busy : bool;
  mutable head : int;            (* block after the last access *)
  mutable reads : int;
  mutable writes : int;
}

let create ?(seek_us = 10_000.) ?(rotation_us = 5_600.) ?(bytes_per_us = 2.5)
    sim intr ~line ~blocks =
  if blocks <= 0 then invalid_arg "Disk_dev.create: no blocks";
  { sim; intr; line; nblocks = blocks; seek_us; rotation_us; bytes_per_us;
    store = Hashtbl.create 1024; queue = Queue.create ();
    completions = Queue.create (); busy = false; head = 0;
    reads = 0; writes = 0 }

let blocks t = t.nblocks

let line t = t.line

let check_range t block count =
  if block < 0 || count <= 0 || block + count > t.nblocks then
    invalid_arg "Disk_dev: block range out of bounds"

let block_data t b =
  match Hashtbl.find_opt t.store b with
  | Some data -> data
  | None ->
    let data = Bytes.make block_size '\000' in
    Hashtbl.replace t.store b data;
    data

let service_us t ~block ~count =
  let positioning = if block = t.head then 0. else t.seek_us +. (t.rotation_us /. 2.) in
  positioning +. (float_of_int (count * block_size) /. t.bytes_per_us)

let rec start_next t =
  if not t.busy then
    match Queue.take_opt t.queue with
    | None -> ()
    | Some op ->
      t.busy <- true;
      let block, count =
        match op with
        | Read { block; count } -> block, count
        | Write { block; data } -> block, Bytes.length data / block_size in
      let us = service_us t ~block ~count in
      ignore (Sim.after_us t.sim us (fun () -> complete t op block count))

and complete t op block count =
  (match op with
   | Read _ ->
     t.reads <- t.reads + 1;
     let data = Bytes.create (count * block_size) in
     for i = 0 to count - 1 do
       Bytes.blit (block_data t (block + i)) 0 data (i * block_size) block_size
     done;
     Queue.add (Read_done { block; count; data }) t.completions
   | Write { data; _ } ->
     t.writes <- t.writes + 1;
     for i = 0 to count - 1 do
       Bytes.blit data (i * block_size) (block_data t (block + i)) 0 block_size
     done;
     Queue.add (Write_done { block; count }) t.completions);
  t.head <- block + count;
  t.busy <- false;
  Intr.post t.intr ~line:t.line;
  start_next t

let submit_read t ~block ~count =
  check_range t block count;
  Queue.add (Read { block; count }) t.queue;
  start_next t

let submit_write t ~block data =
  let len = Bytes.length data in
  if len = 0 || len mod block_size <> 0 then
    invalid_arg "Disk_dev.submit_write: data must be whole blocks";
  check_range t block (len / block_size);
  Queue.add (Write { block; data = Bytes.copy data }) t.queue;
  start_next t

let take_completion t = Queue.take_opt t.completions

let in_flight t = Queue.length t.queue + (if t.busy then 1 else 0)

let reads t = t.reads

let writes t = t.writes
