type event = {
  time : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  clock : Clock.t;
  queue : event Spin_dstruct.Pqueue.t;
  mutable firing : bool;
}

let rec create clock =
  let queue = Spin_dstruct.Pqueue.create ~cmp:(fun a b -> compare a.time b.time) in
  let t = { clock; queue; firing = false } in
  Clock.add_hook clock (fun _ -> fire_due t);
  t

and fire_due t =
  if not t.firing then begin
    t.firing <- true;
    Fun.protect ~finally:(fun () -> t.firing <- false) (fun () ->
      let rec loop () =
        match Spin_dstruct.Pqueue.peek t.queue with
        | Some ev when ev.time <= Clock.now t.clock ->
          ignore (Spin_dstruct.Pqueue.pop t.queue);
          if not ev.cancelled then ev.action ();
          loop ()
        | Some _ | None -> () in
      loop ())
  end

let clock t = t.clock

let now t = Clock.now t.clock

let at t time action =
  let time = max time (Clock.now t.clock) in
  let ev = { time; action; cancelled = false } in
  ignore (Spin_dstruct.Pqueue.add t.queue ev);
  ev

let after t delta action = at t (Clock.now t.clock + delta) action

let after_us t us action =
  after t (Cost.us_to_cycles (Clock.cost t.clock) us) action

let cancel _t ev = ev.cancelled <- true

let live t =
  List.length
    (List.filter (fun ev -> not ev.cancelled) (Spin_dstruct.Pqueue.to_list t.queue))

let pending t = live t

let next_deadline t =
  let rec drop () =
    match Spin_dstruct.Pqueue.peek t.queue with
    | Some ev when ev.cancelled -> ignore (Spin_dstruct.Pqueue.pop t.queue); drop ()
    | Some ev -> Some ev.time
    | None -> None in
  drop ()

let idle_step t =
  match next_deadline t with
  | None -> false
  | Some time -> Clock.skip_to t.clock time; fire_due t; true

let run t = while idle_step t do () done

let quiesce t = fire_due t
