type t = {
  clock : Clock.t;
  handlers : (int, unit -> unit) Hashtbl.t;
  pending : int Queue.t;
  mutable mask_depth : int;
  mutable delivered : int;
  mutable spurious : int;
}

let create clock = {
  clock;
  handlers = Hashtbl.create 16;
  pending = Queue.create ();
  mask_depth = 0;
  delivered = 0;
  spurious = 0;
}

let register t ~line h = Hashtbl.replace t.handlers line h

let deliver t line =
  match Hashtbl.find_opt t.handlers line with
  | None -> t.spurious <- t.spurious + 1
  | Some h ->
    let cost = Clock.cost t.clock in
    Clock.charge t.clock cost.Cost.interrupt_entry;
    t.delivered <- t.delivered + 1;
    (* handlers run with further interrupts masked, as on real hardware *)
    t.mask_depth <- t.mask_depth + 1;
    Fun.protect ~finally:(fun () -> t.mask_depth <- t.mask_depth - 1) h;
    Clock.charge t.clock cost.Cost.interrupt_exit

let rec drain t =
  if t.mask_depth = 0 then
    match Queue.take_opt t.pending with
    | None -> ()
    | Some line -> deliver t line; drain t

let post t ~line =
  if t.mask_depth > 0 then Queue.add line t.pending
  else deliver t line;
  drain t

let with_masked t f =
  t.mask_depth <- t.mask_depth + 1;
  let finally () =
    t.mask_depth <- t.mask_depth - 1;
    drain t in
  Fun.protect ~finally f

let masked t = t.mask_depth > 0

let delivered t = t.delivered

let spurious t = t.spurious
