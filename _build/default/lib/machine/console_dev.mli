(** A simulated serial console: buffered output, interrupt-driven input. *)

type t

val create : Sim.t -> Intr.t -> line:int -> t

val line : t -> int

val putc : t -> char -> unit
(** Output one character; charges a small device-register cost. *)

val puts : t -> string -> unit

val output : t -> string
(** Everything written since boot (or the last {!flush_output}). *)

val flush_output : t -> string

val inject_input : t -> string -> unit
(** Models typing: queues characters and posts the console interrupt
    once per injection. Input beyond the 256-byte ring is dropped. *)

val getc : t -> char option
(** Driver side: pop one input character. *)

val dropped : t -> int
