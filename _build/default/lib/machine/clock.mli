(** The virtual cycle counter.

    Every simulated activity advances a single global-per-machine
    clock by charging cycles. Components (the discrete-event queue,
    the preemptive scheduler) register advance hooks that run after
    each charge; hooks are not re-entered while one is running, which
    lets a hook's own work charge cycles safely. *)

type t

val create : Cost.t -> t

val cost : t -> Cost.t

val now : t -> int
(** Current virtual time in cycles since boot. *)

val now_us : t -> float

val charge : t -> int -> unit
(** [charge t c] advances time by [c >= 0] cycles, then runs hooks. *)

val charge_us : t -> float -> unit

val skip_to : t -> int -> unit
(** [skip_to t cycles] advances directly to an absolute time (used when
    the machine is idle until the next scheduled event). No-op if the
    target is in the past. *)

val idle_cycles : t -> int
(** Cycles skipped while idle since boot; [now - idle_cycles] is the
    busy time, from which CPU utilization is computed (the paper's
    low-priority idle thread, measured exactly). *)

val add_hook : t -> (t -> unit) -> unit
(** [add_hook t f] runs [f t] after every advance (charge or skip). *)

val stamp : t -> (unit -> unit) -> int
(** [stamp t f] runs [f] and returns the cycles it consumed. *)
