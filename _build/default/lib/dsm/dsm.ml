open Spin_net
module Addr = Spin_machine.Addr
module Machine = Spin_machine.Machine
module Phys_mem = Spin_machine.Phys_mem
module Mmu = Spin_machine.Mmu
module Dispatcher = Spin_core.Dispatcher
module Translation = Spin_vm.Translation
module Phys_addr = Spin_vm.Phys_addr
module Virt_addr = Spin_vm.Virt_addr
module Vm = Spin_vm.Vm

let owner_name = "DSM"

type copy_state =
  | Absent
  | Read_copy of Phys_addr.page
  | Owned_rw of Phys_addr.page

type region = {
  region_id : int;
  pages : int;
  ctx : Translation.context;
  vaddr : Virt_addr.vaddr;
  states : copy_state array;
}

type directory_entry = {
  mutable dir_owner : Ip.addr;
  mutable copyset : Ip.addr list;
}

type t = {
  vm : Vm.t;
  host : Host.t;
  manager : Ip.addr;
  mutable regions : region list;
  (* Manager-side directory: (region, page) -> entry. *)
  directory : (int * int, directory_entry) Hashtbl.t;
  (* Manager's authoritative page contents while unclaimed. *)
  home_copies : (int * int, Bytes.t) Hashtbl.t;
  mutable s_read : int;
  mutable s_write : int;
  mutable s_inval : int;
}

let is_manager t = t.host.Host.addr = t.manager

(* ------------------------------------------------------------------ *)
(* Local frame bookkeeping                                            *)
(* ------------------------------------------------------------------ *)

let page_bytes t page =
  let run = Phys_addr.page_run page in
  Phys_mem.read_bytes t.vm.Vm.machine.Machine.mem
    ~pa:(Addr.pa_of_page run.Phys_addr.first_pfn) ~len:Addr.page_size

let fill_page t page data =
  let run = Phys_addr.page_run page in
  Phys_mem.write_bytes t.vm.Vm.machine.Machine.mem
    ~pa:(Addr.pa_of_page run.Phys_addr.first_pfn) data

let find_region t region_id =
  List.find_opt (fun r -> r.region_id = region_id) t.regions

let region_of_fault t (f : Translation.fault) =
  List.find_opt
    (fun r ->
      Translation.context_id r.ctx = Translation.context_id f.Translation.ctx
      && (let base = (Virt_addr.region r.vaddr).Virt_addr.va in
          f.Translation.va >= base
          && f.Translation.va < base + (r.pages * Addr.page_size)))
    t.regions

let page_index r va =
  (va - (Virt_addr.region r.vaddr).Virt_addr.va) / Addr.page_size

let install_copy t r ~page data ~writable =
  let frame = Phys_addr.allocate t.vm.Vm.phys ~owner:owner_name
      ~bytes:Addr.page_size in
  fill_page t frame data;
  let va = (Virt_addr.region r.vaddr).Virt_addr.va + (page * Addr.page_size) in
  Translation.map_one t.vm.Vm.trans r.ctx ~va frame ~index:0
    (if writable then Addr.prot_read_write else Addr.prot_read);
  r.states.(page) <-
    (if writable then Owned_rw frame else Read_copy frame)

let drop_copy t r ~page =
  (match r.states.(page) with
   | Absent -> ()
   | Read_copy frame | Owned_rw frame ->
     let va = (Virt_addr.region r.vaddr).Virt_addr.va + (page * Addr.page_size) in
     let vpn = Addr.vpn_of_va va in
     Mmu.unmap t.vm.Vm.machine.Machine.mmu (Translation.mmu_context r.ctx) ~vpn;
     Phys_addr.deallocate t.vm.Vm.phys frame;
     t.s_inval <- t.s_inval + 1);
  r.states.(page) <- Absent

let downgrade_copy t r ~page =
  match r.states.(page) with
  | Owned_rw frame ->
    let va = (Virt_addr.region r.vaddr).Virt_addr.va + (page * Addr.page_size) in
    ignore (Translation.protect t.vm.Vm.trans r.ctx ~va ~npages:1 Addr.prot_read);
    r.states.(page) <- Read_copy frame
  | Read_copy _ | Absent -> ()

(* ------------------------------------------------------------------ *)
(* Wire encodings                                                     *)
(* ------------------------------------------------------------------ *)

let encode_req ~region_id ~page =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int region_id);
  Bytes.set_int32_le b 4 (Int32.of_int page);
  b

let decode_req b =
  (Int32.to_int (Bytes.get_int32_le b 0), Int32.to_int (Bytes.get_int32_le b 4))

(* ------------------------------------------------------------------ *)
(* Node-side service procedures (called by the manager)               *)
(* ------------------------------------------------------------------ *)

(* dsm.fetch: return our copy of a page, downgrading to read-only. *)
let serve_fetch t args =
  let region_id, page = decode_req args in
  match find_region t region_id with
  | None -> Bytes.create Addr.page_size
  | Some r ->
    (match r.states.(page) with
     | Owned_rw frame | Read_copy frame ->
       downgrade_copy t r ~page;
       page_bytes t frame
     | Absent -> Bytes.create Addr.page_size)

(* dsm.yield: surrender our copy entirely (ownership transfer). *)
let serve_yield t args =
  let region_id, page = decode_req args in
  match find_region t region_id with
  | None -> Bytes.create Addr.page_size
  | Some r ->
    (match r.states.(page) with
     | Owned_rw frame | Read_copy frame ->
       let data = page_bytes t frame in
       drop_copy t r ~page;
       data
     | Absent -> Bytes.create Addr.page_size)

(* dsm.invalidate: drop a read copy. *)
let serve_invalidate t args =
  let region_id, page = decode_req args in
  (match find_region t region_id with
   | Some r -> drop_copy t r ~page
   | None -> ());
  Bytes.empty

(* ------------------------------------------------------------------ *)
(* Manager-side directory service                                     *)
(* ------------------------------------------------------------------ *)

let dir_entry t key =
  match Hashtbl.find_opt t.directory key with
  | Some e -> e
  | None ->
    let e = { dir_owner = t.manager; copyset = [] } in
    Hashtbl.replace t.directory key e;
    e

let call_node t ~dst ~name args =
  if dst = t.host.Host.addr then
    (* Local legs short-circuit (the manager is also a node). *)
    match name with
    | "dsm.fetch" -> Some (serve_fetch t args)
    | "dsm.yield" -> Some (serve_yield t args)
    | "dsm.invalidate" -> Some (serve_invalidate t args)
    | _ -> None
  else Rpc.call t.host.Host.rpc ~dst ~name args

let home_copy t key =
  match Hashtbl.find_opt t.home_copies key with
  | Some data -> data
  | None -> Bytes.create Addr.page_size

(* dsm.read: a node wants a read copy. *)
let serve_read t ~src args =
  let region_id, page = decode_req args in
  let key = (region_id, page) in
  let e = dir_entry t key in
  let data =
    if e.dir_owner = t.manager && not (List.mem t.manager e.copyset)
       && find_region t region_id
          |> Option.map (fun r -> r.states.(page) = Absent)
          |> Option.value ~default:true
    then home_copy t key
    else
      match call_node t ~dst:e.dir_owner ~name:"dsm.fetch" args with
      | Some d -> d
      | None -> home_copy t key in
  if not (List.mem src e.copyset) then e.copyset <- src :: e.copyset;
  Hashtbl.replace t.home_copies key data;   (* manager keeps it clean *)
  data

(* dsm.write: a node wants ownership. *)
let serve_write t ~src args =
  let region_id, page = decode_req args in
  let key = (region_id, page) in
  let e = dir_entry t key in
  (* Invalidate every copy except the requester's. *)
  List.iter
    (fun holder ->
      if holder <> src then
        ignore (call_node t ~dst:holder ~name:"dsm.invalidate" args))
    e.copyset;
  let data =
    if e.dir_owner = src then home_copy t key
    else if e.dir_owner = t.manager
            && (find_region t region_id
                |> Option.map (fun r -> r.states.(page) = Absent)
                |> Option.value ~default:true)
    then home_copy t key
    else
      match call_node t ~dst:e.dir_owner ~name:"dsm.yield" args with
      | Some d -> d
      | None -> home_copy t key in
  e.dir_owner <- src;
  e.copyset <- [ src ];
  data

(* ------------------------------------------------------------------ *)
(* Fault handling                                                     *)
(* ------------------------------------------------------------------ *)

(* Requests to the manager carry the caller's address (RPC does not
   expose it to service procedures). *)
let manager_args t ~region_id ~page =
  let b = Bytes.create 12 in
  Bytes.set_int32_le b 0 (Int32.of_int region_id);
  Bytes.set_int32_le b 4 (Int32.of_int page);
  Bytes.set_int32_le b 8 (Int32.of_int t.host.Host.addr);
  b

let fetch_read t r ~page =
  t.s_read <- t.s_read + 1;
  match
    if is_manager t then
      Some (serve_read t ~src:t.host.Host.addr
              (encode_req ~region_id:r.region_id ~page))
    else
      Rpc.call t.host.Host.rpc ~dst:t.manager ~name:"dsm.read"
        (manager_args t ~region_id:r.region_id ~page)
  with
  | Some data -> install_copy t r ~page data ~writable:false
  | None -> ()

let fetch_write t r ~page =
  t.s_write <- t.s_write + 1;
  match
    if is_manager t then
      Some (serve_write t ~src:t.host.Host.addr
              (encode_req ~region_id:r.region_id ~page))
    else
      Rpc.call t.host.Host.rpc ~dst:t.manager ~name:"dsm.write"
        (manager_args t ~region_id:r.region_id ~page)
  with
  | Some data ->
    (* We may hold a stale read copy: replace it. *)
    drop_copy t r ~page;
    t.s_inval <- t.s_inval - 1;             (* self-drop is not an inval *)
    install_copy t r ~page data ~writable:true
  | None -> ()

let handle_not_present t f =
  match region_of_fault t f with
  | None -> ()
  | Some r ->
    let page = page_index r f.Translation.va in
    (match f.Translation.access with
     | Mmu.Write -> fetch_write t r ~page
     | Mmu.Read | Mmu.Execute -> fetch_read t r ~page)

let handle_protection t f =
  match region_of_fault t f with
  | None -> ()
  | Some r ->
    if f.Translation.access = Mmu.Write then
      fetch_write t r ~page:(page_index r f.Translation.va)

(* ------------------------------------------------------------------ *)
(* Public interface                                                   *)
(* ------------------------------------------------------------------ *)

let create vm host ~manager =
  let t = {
    vm; host; manager;
    regions = [];
    directory = Hashtbl.create 64;
    home_copies = Hashtbl.create 64;
    s_read = 0; s_write = 0; s_inval = 0;
  } in
  (* Node services. *)
  Rpc.export host.Host.rpc ~name:"dsm.fetch" (serve_fetch t);
  Rpc.export host.Host.rpc ~name:"dsm.yield" (serve_yield t);
  Rpc.export host.Host.rpc ~name:"dsm.invalidate" (serve_invalidate t);
  (* Manager directory services: src is recovered from the argument
     tail (RPC does not expose the caller, so the caller appends its
     address). *)
  let with_src serve args =
    let src = Int32.to_int (Bytes.get_int32_le args 8) in
    serve t ~src (Bytes.sub args 0 8) in
  if host.Host.addr = manager then begin
    Rpc.export host.Host.rpc ~name:"dsm.read" (with_src serve_read);
    Rpc.export host.Host.rpc ~name:"dsm.write" (with_src serve_write)
  end;
  (* Fault handlers, guarded to our regions. *)
  ignore
    (Dispatcher.install_exn (Translation.page_not_present vm.Vm.trans)
       ~installer:owner_name
       ~guard:(fun f -> Option.is_some (region_of_fault t f))
       (handle_not_present t));
  ignore
    (Dispatcher.install_exn (Translation.protection_fault vm.Vm.trans)
       ~installer:owner_name
       ~guard:(fun f -> Option.is_some (region_of_fault t f))
       (handle_protection t));
  t

let attach t ctx ~region_id ~pages =
  let vaddr =
    Virt_addr.allocate t.vm.Vm.virt ~asid:(Translation.context_id ctx)
      ~owner:owner_name ~bytes:(pages * Addr.page_size) in
  Translation.attach_region ctx (Virt_addr.region vaddr);
  let r = { region_id; pages; ctx; vaddr;
            states = Array.make pages Absent } in
  t.regions <- r :: t.regions;
  r

let base_va r = (Virt_addr.region r.vaddr).Virt_addr.va

let va_of_page r i =
  if i < 0 || i >= r.pages then invalid_arg "Dsm.va_of_page";
  base_va r + (i * Addr.page_size)

(* Reads and writes go through the CPU so faults route normally. *)
let read_word t r ~page =
  Spin_machine.Cpu.set_context t.vm.Vm.machine.Machine.cpu
    (Some (Translation.mmu_context r.ctx));
  Spin_machine.Cpu.load_word t.vm.Vm.machine.Machine.cpu ~va:(va_of_page r page)

let write_word t r ~page v =
  Spin_machine.Cpu.set_context t.vm.Vm.machine.Machine.cpu
    (Some (Translation.mmu_context r.ctx));
  Spin_machine.Cpu.store_word t.vm.Vm.machine.Machine.cpu ~va:(va_of_page r page) v

type node_stats = {
  read_faults : int;
  write_faults : int;
  invalidations : int;
}

let stats t = {
  read_faults = t.s_read;
  write_faults = t.s_write;
  invalidations = max 0 t.s_inval;
}
