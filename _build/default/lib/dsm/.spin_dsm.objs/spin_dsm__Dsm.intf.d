lib/dsm/dsm.mli: Spin_net Spin_vm
