lib/dsm/dsm.ml: Array Bytes Hashtbl Host Int32 Ip List Option Rpc Spin_core Spin_machine Spin_net Spin_vm
