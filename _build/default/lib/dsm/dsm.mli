(** Distributed shared memory, as a SPIN extension.

    The paper lists DSM (Carter et al.'s Munin) among the services
    implementors build on the translation events: handlers on
    [Translation.PageNotPresent] and [Translation.ProtectionFault]
    fetch pages and ownership over the network.

    The protocol is a classic centralized-manager, single-writer /
    multiple-reader invalidation scheme (Li & Hudak's Ivy):
    - the *manager* host keeps, per page, the current owner and the
      copyset of hosts holding read copies;
    - a read fault fetches a clean copy from the owner (who downgrades
      to read-only) and joins the copyset;
    - a write fault invalidates every copy, transfers ownership, and
      maps the page read-write.

    Transport is the RPC extension; each node's fault handlers run in
    strand context and block on the calls, exactly as the demand pager
    blocks on the disk. Page size must fit the link MTU (use ATM). *)

type t
(** One DSM node (per host). *)

type region
(** A shared region attached on this node. *)

val create :
  Spin_vm.Vm.t -> Spin_net.Host.t -> manager:Spin_net.Ip.addr -> t
(** Creates a node. The node whose host address equals [manager]
    serves the directory; create it first. *)

val attach :
  t -> Spin_vm.Translation.context -> region_id:int -> pages:int -> region
(** Attach a shared region in the given context. The virtual range is
    allocated here and is the same size on every node; pages start
    zero-filled, owned by the manager. All nodes must use the same
    [region_id] and [pages]. *)

val base_va : region -> int

val va_of_page : region -> int -> int

val read_word : t -> region -> page:int -> int64
(** Strand context: may fault and fetch the page over the network. *)

val write_word : t -> region -> page:int -> int64 -> unit
(** Strand context: may fetch ownership over the network. *)

type node_stats = {
  read_faults : int;      (** pages fetched for reading *)
  write_faults : int;     (** ownership acquisitions *)
  invalidations : int;    (** local copies shot down *)
}

val stats : t -> node_stats
