module Lru = Spin_dstruct.Lru

type stats = {
  hits : int;
  misses : int;
  large_bypasses : int;
  cached_bytes : int;
}

(* Declared after [stats] so the shared field names resolve here. *)
type t = {
  fs : Simple_fs.t;
  large_threshold : int;
  capacity_bytes : int;
  cache : (string, Bytes.t) Lru.t;
  mutable bytes_held : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable large_count : int;
}

let create ?(capacity_bytes = 4 * 1024 * 1024) ?(large_threshold = 64 * 1024) fs =
  let rec t =
    lazy
      { fs; large_threshold; capacity_bytes;
        cache =
          Lru.create
            ~on_evict:(fun _ data ->
              let self = Lazy.force t in
              self.bytes_held <- self.bytes_held - Bytes.length data)
            ~capacity:4096 ();
        bytes_held = 0; hit_count = 0; miss_count = 0; large_count = 0 } in
  Lazy.force t

let evict_to_budget t =
  while t.bytes_held > t.capacity_bytes do
    (* Walk to the cold end of the LRU (last in iteration order). *)
    let last = ref None in
    Lru.iter (fun k _ -> last := Some k) t.cache;
    match !last with
    | None -> t.bytes_held <- 0
    | Some k ->
      (match Lru.peek t.cache k with
       | Some data -> t.bytes_held <- t.bytes_held - Bytes.length data
       | None -> ());
      Lru.remove t.cache k
  done

let fetch t ~name =
  if not (Simple_fs.exists t.fs ~name) then None
  else begin
    let size = Simple_fs.size t.fs ~name in
    if size > t.large_threshold then begin
      (* Large: never cached, read around the buffer cache too. *)
      t.large_count <- t.large_count + 1;
      Some (Simple_fs.read ~cached:false t.fs ~name)
    end else
      match Lru.find t.cache name with
      | Some data -> t.hit_count <- t.hit_count + 1; Some (Bytes.copy data)
      | None ->
        t.miss_count <- t.miss_count + 1;
        let data = Simple_fs.read ~cached:false t.fs ~name in
        Lru.add t.cache name (Bytes.copy data);
        t.bytes_held <- t.bytes_held + Bytes.length data;
        evict_to_budget t;
        Some data
  end

let invalidate t ~name =
  (match Lru.peek t.cache name with
   | Some data -> t.bytes_held <- t.bytes_held - Bytes.length data
   | None -> ());
  Lru.remove t.cache name

let stats t = {
  hits = t.hit_count;
  misses = t.miss_count;
  large_bypasses = t.large_count;
  cached_bytes = t.bytes_held;
}
