module Disk = Spin_machine.Disk_dev
module Bitset = Spin_dstruct.Bitset

let bs = Disk.block_size
let magic = 0x53504653                    (* "SPFS" *)
let ndirect = 12
let nindirect = bs / 4                    (* 128 pointers *)
let max_file_blocks = ndirect + nindirect
let max_file_bytes = max_file_blocks * bs
let inode_size = 64
let inodes_per_block = bs / inode_size
let dirent_size = 32
let max_name = dirent_size - 4 - 1        (* name, NUL, inode number *)
let root_inode = 0

type error =
  | No_such_file
  | File_exists
  | No_space
  | File_too_large
  | Name_too_long

exception Fs_error of error

let error_to_string = function
  | No_such_file -> "no such file"
  | File_exists -> "file exists"
  | No_space -> "no space on device"
  | File_too_large -> "file too large"
  | Name_too_long -> "name too long"

type inode = {
  mutable size : int;
  direct : int array;                     (* block numbers; 0 = hole *)
  mutable indirect : int;                 (* indirect block, 0 = none *)
}

type t = {
  cache : Block_cache.t;
  ninodes : int;
  nblocks : int;
  ibitmap_block : int;
  dbitmap_start : int;
  dbitmap_blocks : int;
  itable_start : int;
  data_start : int;
  ibitmap : Bitset.t;
  dbitmap : Bitset.t;                     (* indexed by data block ordinal *)
}

(* ------------------------------------------------------------------ *)
(* On-disk encoding helpers                                           *)
(* ------------------------------------------------------------------ *)

let get32 b off = Int32.to_int (Bytes.get_int32_le b off)
let set32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let encode_inode ino =
  let b = Bytes.make inode_size '\000' in
  set32 b 0 ino.size;
  Array.iteri (fun i blk -> set32 b (4 + (i * 4)) blk) ino.direct;
  set32 b (4 + (ndirect * 4)) ino.indirect;
  b

let decode_inode b off =
  { size = get32 b off;
    direct = Array.init ndirect (fun i -> get32 b (off + 4 + (i * 4)));
    indirect = get32 b (off + 4 + (ndirect * 4)) }

let encode_bitset set =
  (* One bit per entry, packed into whole blocks. *)
  let nbits = Bitset.length set in
  let blocks = (((nbits + 7) / 8) + bs - 1) / bs in
  let b = Bytes.make (blocks * bs) '\000' in
  for i = 0 to nbits - 1 do
    if Bitset.mem set i then begin
      let byte = Char.code (Bytes.get b (i / 8)) in
      Bytes.set b (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))))
    end
  done;
  b

let decode_bitset b nbits =
  let set = Bitset.create nbits in
  for i = 0 to nbits - 1 do
    if Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0 then
      Bitset.set set i
  done;
  set

(* ------------------------------------------------------------------ *)
(* Metadata I/O                                                       *)
(* ------------------------------------------------------------------ *)

let write_blocks t start data =
  let nblocks = (Bytes.length data + bs - 1) / bs in
  for i = 0 to nblocks - 1 do
    let chunk = Bytes.make bs '\000' in
    let len = min bs (Bytes.length data - (i * bs)) in
    Bytes.blit data (i * bs) chunk 0 len;
    Block_cache.write t.cache ~block:(start + i) chunk
  done

let sync_ibitmap t = write_blocks t t.ibitmap_block (encode_bitset t.ibitmap)

let sync_dbitmap t = write_blocks t t.dbitmap_start (encode_bitset t.dbitmap)

let read_inode t i =
  let block = t.itable_start + (i / inodes_per_block) in
  let data = Block_cache.read t.cache ~block in
  decode_inode data ((i mod inodes_per_block) * inode_size)

let write_inode t i ino =
  let block = t.itable_start + (i / inodes_per_block) in
  let data = Block_cache.read t.cache ~block in
  Bytes.blit (encode_inode ino) 0 data ((i mod inodes_per_block) * inode_size)
    inode_size;
  Block_cache.write t.cache ~block data

let alloc_inode t =
  match Bitset.find_first_clear t.ibitmap with
  | None -> raise (Fs_error No_space)
  | Some i ->
    Bitset.set t.ibitmap i;
    sync_ibitmap t;
    i

let alloc_data_block t =
  match Bitset.find_first_clear t.dbitmap with
  | None -> raise (Fs_error No_space)
  | Some ordinal ->
    Bitset.set t.dbitmap ordinal;
    sync_dbitmap t;
    t.data_start + ordinal

let free_data_block t block =
  if block >= t.data_start then begin
    Bitset.clear t.dbitmap (block - t.data_start);
    sync_dbitmap t
  end

(* ------------------------------------------------------------------ *)
(* Block mapping through an inode                                     *)
(* ------------------------------------------------------------------ *)

let indirect_table t ino =
  if ino.indirect = 0 then None
  else Some (Block_cache.read t.cache ~block:ino.indirect)

let block_of t ino n =
  if n < ndirect then (if ino.direct.(n) = 0 then None else Some ino.direct.(n))
  else if n >= max_file_blocks then raise (Fs_error File_too_large)
  else
    match indirect_table t ino with
    | None -> None
    | Some table ->
      let blk = get32 table ((n - ndirect) * 4) in
      if blk = 0 then None else Some blk

let ensure_block t ino n =
  match block_of t ino n with
  | Some blk -> blk
  | None ->
    let blk = alloc_data_block t in
    if n < ndirect then ino.direct.(n) <- blk
    else begin
      if ino.indirect = 0 then begin
        ino.indirect <- alloc_data_block t;
        Block_cache.write t.cache ~block:ino.indirect (Bytes.make bs '\000')
      end;
      let table = Block_cache.read t.cache ~block:ino.indirect in
      set32 table ((n - ndirect) * 4) blk;
      Block_cache.write t.cache ~block:ino.indirect table
    end;
    blk

let truncate_inode t ino =
  for n = 0 to ndirect - 1 do
    if ino.direct.(n) <> 0 then begin
      free_data_block t ino.direct.(n);
      ino.direct.(n) <- 0
    end
  done;
  (match indirect_table t ino with
   | Some table ->
     for i = 0 to nindirect - 1 do
       let blk = get32 table (i * 4) in
       if blk <> 0 then free_data_block t blk
     done;
     free_data_block t ino.indirect;
     ino.indirect <- 0
   | None -> ());
  ino.size <- 0

(* ------------------------------------------------------------------ *)
(* Inode-level read and write                                         *)
(* ------------------------------------------------------------------ *)

let read_inode_data t ?(cached = true) ino ~off ~len =
  let len = max 0 (min len (ino.size - off)) in
  let out = Bytes.create len in
  let fetch block =
    if cached then Block_cache.read t.cache ~block
    else Block_cache.read_uncached t.cache ~block in
  let rec loop pos =
    if pos < len then begin
      let file_off = off + pos in
      let n = file_off / bs and boff = file_off mod bs in
      let chunk = min (len - pos) (bs - boff) in
      (match block_of t ino n with
       | Some block -> Bytes.blit (fetch block) boff out pos chunk
       | None -> ());                      (* hole reads as zeros *)
      loop (pos + chunk)
    end in
  loop 0;
  out

let write_inode_data t ino ~off data =
  let len = Bytes.length data in
  if off + len > max_file_bytes then raise (Fs_error File_too_large);
  let rec loop pos =
    if pos < len then begin
      let file_off = off + pos in
      let n = file_off / bs and boff = file_off mod bs in
      let chunk = min (len - pos) (bs - boff) in
      let block = ensure_block t ino n in
      let cur =
        if chunk = bs then Bytes.make bs '\000'
        else Block_cache.read t.cache ~block in
      Bytes.blit data pos cur boff chunk;
      Block_cache.write t.cache ~block cur;
      loop (pos + chunk)
    end in
  loop 0;
  ino.size <- max ino.size (off + len)

(* ------------------------------------------------------------------ *)
(* Directory (single root)                                            *)
(* ------------------------------------------------------------------ *)

let decode_dirent data off =
  let rec name_len i = if i >= max_name || Bytes.get data (off + i) = '\000'
    then i else name_len (i + 1) in
  let len = name_len 0 in
  if len = 0 then None
  else Some (Bytes.sub_string data off len, get32 data (off + dirent_size - 4))

let dir_entries t =
  let root = read_inode t root_inode in
  let data = read_inode_data t root ~off:0 ~len:root.size in
  let rec loop off acc =
    if off + dirent_size > Bytes.length data then List.rev acc
    else
      match decode_dirent data off with
      | Some e -> loop (off + dirent_size) (e :: acc)
      | None -> loop (off + dirent_size) acc in
  loop 0 []

let dir_lookup t name =
  List.assoc_opt name (dir_entries t)

let dir_add t name inum =
  if String.length name > max_name then raise (Fs_error Name_too_long);
  let root = read_inode t root_inode in
  let data = read_inode_data t root ~off:0 ~len:root.size in
  (* Reuse a tombstone slot if one exists. *)
  let rec find_slot off =
    if off + dirent_size > Bytes.length data then root.size
    else if decode_dirent data off = None then off
    else find_slot (off + dirent_size) in
  let slot = find_slot 0 in
  let entry = Bytes.make dirent_size '\000' in
  Bytes.blit_string name 0 entry 0 (String.length name);
  set32 entry (dirent_size - 4) inum;
  write_inode_data t root ~off:slot entry;
  write_inode t root_inode root

let dir_remove t name =
  let root = read_inode t root_inode in
  let data = read_inode_data t root ~off:0 ~len:root.size in
  let rec loop off =
    if off + dirent_size > Bytes.length data then ()
    else
      match decode_dirent data off with
      | Some (n, _) when String.equal n name ->
        write_inode_data t root ~off (Bytes.make dirent_size '\000');
        write_inode t root_inode root
      | Some _ | None -> loop (off + dirent_size) in
  loop 0

(* ------------------------------------------------------------------ *)
(* Public interface                                                   *)
(* ------------------------------------------------------------------ *)

let layout ~ninodes ~blocks =
  let ibitmap_block = 1 in
  let dbitmap_start = 2 in
  (* One bit per block of the whole device keeps the math simple. *)
  let dbitmap_blocks = (((blocks + 7) / 8) + bs - 1) / bs in
  let itable_start = dbitmap_start + dbitmap_blocks in
  let itable_blocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let data_start = itable_start + itable_blocks in
  (ibitmap_block, dbitmap_start, dbitmap_blocks, itable_start, data_start)

let make cache ~ninodes ~blocks ~ibitmap ~dbitmap =
  let ibitmap_block, dbitmap_start, dbitmap_blocks, itable_start, data_start =
    layout ~ninodes ~blocks in
  { cache; ninodes; nblocks = blocks;
    ibitmap_block; dbitmap_start; dbitmap_blocks; itable_start; data_start;
    ibitmap; dbitmap }

let format cache ?(ninodes = 512) ~blocks () =
  let _, _, _, _, data_start = layout ~ninodes ~blocks in
  if data_start + 8 > blocks then invalid_arg "Simple_fs.format: too few blocks";
  let ibitmap = Bitset.create ninodes in
  let dbitmap = Bitset.create (blocks - data_start) in
  let t = make cache ~ninodes ~blocks ~ibitmap ~dbitmap in
  (* Superblock. *)
  let sb = Bytes.make bs '\000' in
  set32 sb 0 magic;
  set32 sb 4 ninodes;
  set32 sb 8 blocks;
  Block_cache.write cache ~block:0 sb;
  (* Root directory: inode 0, empty. *)
  Bitset.set ibitmap root_inode;
  sync_ibitmap t;
  sync_dbitmap t;
  (* Zero the inode table. *)
  let itable_blocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  for i = 0 to itable_blocks - 1 do
    Block_cache.write cache ~block:(t.itable_start + i) (Bytes.make bs '\000')
  done;
  write_inode t root_inode { size = 0; direct = Array.make ndirect 0; indirect = 0 };
  t

let mount cache =
  let sb = Block_cache.read cache ~block:0 in
  if get32 sb 0 <> magic then raise (Fs_error No_such_file);
  let ninodes = get32 sb 4 and blocks = get32 sb 8 in
  let ibitmap_block, dbitmap_start, dbitmap_blocks, _, data_start =
    layout ~ninodes ~blocks in
  let ibm_data = Block_cache.read cache ~block:ibitmap_block in
  let ibitmap = decode_bitset ibm_data ninodes in
  let dbm = Buffer.create (dbitmap_blocks * bs) in
  for i = 0 to dbitmap_blocks - 1 do
    Buffer.add_bytes dbm (Block_cache.read cache ~block:(dbitmap_start + i))
  done;
  let dbitmap = decode_bitset (Buffer.to_bytes dbm) (blocks - data_start) in
  make cache ~ninodes ~blocks ~ibitmap ~dbitmap

let lookup_exn t name =
  match dir_lookup t name with
  | Some inum -> inum
  | None -> raise (Fs_error No_such_file)

let exists t ~name = Option.is_some (dir_lookup t name)

let create t ~name =
  if String.length name > max_name then raise (Fs_error Name_too_long);
  if exists t ~name then raise (Fs_error File_exists);
  let inum = alloc_inode t in
  write_inode t inum { size = 0; direct = Array.make ndirect 0; indirect = 0 };
  dir_add t name inum

let write t ~name data =
  let inum = lookup_exn t name in
  let ino = read_inode t inum in
  truncate_inode t ino;
  write_inode_data t ino ~off:0 data;
  write_inode t inum ino

let append t ~name data =
  let inum = lookup_exn t name in
  let ino = read_inode t inum in
  write_inode_data t ino ~off:ino.size data;
  write_inode t inum ino

let read ?(cached = true) t ~name =
  let ino = read_inode t (lookup_exn t name) in
  read_inode_data t ~cached ino ~off:0 ~len:ino.size

let read_range ?(cached = true) t ~name ~off ~len =
  let ino = read_inode t (lookup_exn t name) in
  read_inode_data t ~cached ino ~off ~len

let size t ~name = (read_inode t (lookup_exn t name)).size

let delete t ~name =
  let inum = lookup_exn t name in
  let ino = read_inode t inum in
  truncate_inode t ino;
  write_inode t inum ino;
  Bitset.clear t.ibitmap inum;
  sync_ibitmap t;
  dir_remove t name

let list_files t = List.map fst (dir_entries t)

let free_blocks t = Bitset.length t.dbitmap - Bitset.count t.dbitmap
