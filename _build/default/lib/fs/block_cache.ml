module Machine = Spin_machine.Machine
module Disk = Spin_machine.Disk_dev
module Intr = Spin_machine.Intr
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sched = Spin_sched.Sched
module Lru = Spin_dstruct.Lru

type pending = {
  strand : Spin_sched.Strand.t;
  mutable data : Bytes.t option;
  mutable complete : bool;
}

type t = {
  machine : Machine.t;
  sched : Sched.t;
  disk : Disk.t;
  cache : (int, Bytes.t) Lru.t;
  pending : (int, pending) Hashtbl.t;     (* block -> waiter *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity_blocks = 2048) machine sched disk =
  let t = {
    machine; sched; disk;
    cache = Lru.create ~capacity:capacity_blocks ();
    pending = Hashtbl.create 32;
    hits = 0; misses = 0;
  } in
  Intr.register machine.Machine.intr ~line:(Disk.line disk) (fun () ->
    let rec drain () =
      match Disk.take_completion disk with
      | None -> ()
      | Some completion ->
        let block, data =
          match completion with
          | Disk.Read_done { block; data; _ } -> block, Some data
          | Disk.Write_done { block; _ } -> block, None in
        (match Hashtbl.find_opt t.pending block with
         | Some p ->
           Hashtbl.remove t.pending block;
           p.data <- data;
           p.complete <- true;
           Sched.unblock sched p.strand
         | None -> ());
        drain () in
    drain ());
  t

let charge_copy t =
  Clock.charge t.machine.Machine.clock
    ((Disk.block_size / 8) * t.machine.Machine.cost.Cost.copy_per_word)

let wait_for t block submit =
  let p = { strand = Sched.self t.sched; data = None; complete = false } in
  Hashtbl.replace t.pending block p;
  submit ();
  (* Wakeups can be spurious (e.g. the caller is a protocol thread
     that network interrupts also unblock): wait for completion. *)
  while not p.complete do
    Sched.block_current t.sched
  done;
  p.data

let disk_read t block =
  match wait_for t block (fun () -> Disk.submit_read t.disk ~block ~count:1) with
  | Some data -> data
  | None -> Bytes.make Disk.block_size '\000'

let read t ~block =
  match Lru.find t.cache block with
  | Some data ->
    t.hits <- t.hits + 1;
    charge_copy t;
    Bytes.copy data
  | None ->
    t.misses <- t.misses + 1;
    let data = disk_read t block in
    Lru.add t.cache block (Bytes.copy data);
    data

let read_uncached t ~block =
  t.misses <- t.misses + 1;
  disk_read t block

let write_block t block data =
  if Bytes.length data <> Disk.block_size then
    invalid_arg "Block_cache.write: not one block";
  ignore (wait_for t block (fun () -> Disk.submit_write t.disk ~block data))

let write t ~block data =
  write_block t block data;
  if Lru.mem t.cache block then Lru.add t.cache block (Bytes.copy data)

let write_uncached t ~block data =
  Lru.remove t.cache block;
  write_block t block data

let flush t = Lru.clear t.cache

let hits t = t.hits

let misses t = t.misses
