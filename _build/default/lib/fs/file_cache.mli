(** The SPIN web server's hybrid object cache (paper, section 5.4):
    LRU caching for small files, no caching for large files (which
    "tend to be accessed infrequently"), running over the non-caching
    file system mode so that nothing is double-buffered. *)

type t

val create :
  ?capacity_bytes:int -> ?large_threshold:int -> Simple_fs.t -> t
(** Defaults: 4 MB capacity, 64 KB large-file threshold. *)

val fetch : t -> name:string -> Bytes.t option
(** The file's contents, from cache when possible; [None] if the file
    does not exist. Small files are inserted on miss; large files
    always go to the file system (uncached at both levels). *)

val invalidate : t -> name:string -> unit

type stats = {
  hits : int;
  misses : int;
  large_bypasses : int;
  cached_bytes : int;
}

val stats : t -> stats
