(** The buffer cache: synchronous block I/O for strand-context code,
    with an LRU cache of recently used blocks.

    Reads and writes block the calling strand on the disk when they
    miss; cached reads cost only the memory copy. Writes are
    write-through (the cache never holds dirty data), which keeps the
    web-server experiment's "double buffering" story honest: caching
    happens either here or in the file cache, and both can be turned
    off. *)

type t

val create :
  ?capacity_blocks:int ->
  Spin_machine.Machine.t -> Spin_sched.Sched.t -> Spin_machine.Disk_dev.t ->
  t
(** Default capacity: 2048 blocks (1 MB). Registers the disk's
    completion interrupt handler. *)

val read : t -> block:int -> Bytes.t
(** One block; a private copy. Must run in strand context on a miss. *)

val read_uncached : t -> block:int -> Bytes.t
(** Bypass the cache entirely (the "non-caching file system" mode the
    SPIN web server runs on). *)

val write : t -> block:int -> Bytes.t -> unit
(** Write-through; updates the cache copy unless the block was never
    cached. *)

val write_uncached : t -> block:int -> Bytes.t -> unit

val flush : t -> unit
(** Drop every cached block. *)

val hits : t -> int

val misses : t -> int
