(** A disk-based file system (the paper's `core` component includes
    "a disk-based and network-based file system").

    Classic layout on the simulated disk:
    {v
      block 0            superblock
      block 1            inode bitmap (4096 inodes)
      blocks 2..k        data-block bitmap
      blocks k+1..m      inode table (8 inodes per 512-byte block)
      blocks m+1..       data
    v}

    Inodes hold 12 direct block pointers and one indirect block (128
    pointers), so a file holds up to 71,680 bytes — enough for the
    paper's web objects and video frames. A single root directory
    (inode 0) maps names to inodes.

    All operations must run in strand context (they block on disk
    I/O). Reads can bypass the buffer cache, which is how the SPIN
    web server runs on a non-caching file system and manages its own
    object cache instead. *)

type t

type error =
  | No_such_file
  | File_exists
  | No_space
  | File_too_large
  | Name_too_long

exception Fs_error of error

val error_to_string : error -> string

val max_file_bytes : int

val format : Block_cache.t -> ?ninodes:int -> blocks:int -> unit -> t
(** Writes a fresh file system covering [blocks] blocks of the disk
    and mounts it. *)

val mount : Block_cache.t -> t
(** Reads the superblock and bitmaps of a previously formatted disk.
    Raises [Fs_error No_such_file] if the magic is wrong. *)

val create : t -> name:string -> unit
(** Creates an empty file. Raises [Fs_error File_exists] or
    [Name_too_long] (names are at most 27 bytes). *)

val write : t -> name:string -> Bytes.t -> unit
(** Replaces the file's contents. *)

val append : t -> name:string -> Bytes.t -> unit

val read : ?cached:bool -> t -> name:string -> Bytes.t
(** Whole-file read; [cached:false] (default [true]) bypasses the
    buffer cache. *)

val read_range : ?cached:bool -> t -> name:string -> off:int -> len:int -> Bytes.t

val size : t -> name:string -> int

val exists : t -> name:string -> bool

val delete : t -> name:string -> unit

val list_files : t -> string list

val free_blocks : t -> int
