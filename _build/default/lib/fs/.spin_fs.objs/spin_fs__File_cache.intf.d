lib/fs/file_cache.mli: Bytes Simple_fs
