lib/fs/block_cache.ml: Bytes Hashtbl Spin_dstruct Spin_machine Spin_sched
