lib/fs/simple_fs.mli: Block_cache Bytes
