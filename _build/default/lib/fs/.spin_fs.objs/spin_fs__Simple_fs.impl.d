lib/fs/simple_fs.ml: Array Block_cache Buffer Bytes Char Int32 List Option Spin_dstruct Spin_machine String
