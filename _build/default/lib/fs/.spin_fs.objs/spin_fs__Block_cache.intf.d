lib/fs/block_cache.mli: Bytes Spin_machine Spin_sched
