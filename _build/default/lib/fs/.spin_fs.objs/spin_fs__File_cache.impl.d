lib/fs/file_cache.ml: Bytes Lazy Simple_fs Spin_dstruct
