module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost

type value =
  | Ptr of int
  | Int of int

type obj = {
  mutable address : int;
  owner : string;
  fields : value array;
}

type page = {
  pid : int;
  mutable bump : int;
  mutable objs : obj list;
}

type root = {
  root_name : string;
  mutable v : value;
  mutable registered : bool;
}

type gc_stats = {
  collections : int;
  words_copied : int;
  pages_pinned : int;
  words_freed : int;
  pause_cycles : int;
}

type t = {
  clock : Clock.t;
  page_words : int;
  threshold_words : int;
  objects : (int, obj) Hashtbl.t;        (* address -> object *)
  mutable pages : page list;
  mutable next_pid : int;
  mutable roots : root list;
  mutable ambiguous : int list;
  mutable auto : bool;
  mutable since_gc : int;
  mutable in_gc : bool;
  mutable s_collections : int;
  mutable s_copied : int;
  mutable s_pinned : int;
  mutable s_freed : int;
  mutable s_pause : int;
}

(* Collector work costs (cycles). *)
let scan_per_word = 2
let copy_per_word = 5

let create ?(page_words = 1024) ?(threshold_words = 16384) clock () =
  if page_words < 2 then invalid_arg "Kheap.create: page too small";
  { clock; page_words; threshold_words;
    objects = Hashtbl.create 1024;
    pages = []; next_pid = 0;
    roots = []; ambiguous = [];
    auto = true; since_gc = 0; in_gc = false;
    s_collections = 0; s_copied = 0; s_pinned = 0; s_freed = 0; s_pause = 0 }

let addr_of t page offset = (page.pid * t.page_words) + offset

let page_of_addr t addr = addr / t.page_words

let new_page t =
  let p = { pid = t.next_pid; bump = 0; objs = [] } in
  t.next_pid <- t.next_pid + 1;
  t.pages <- p :: t.pages;
  p

let place t page obj words =
  obj.address <- addr_of t page page.bump;
  page.bump <- page.bump + words;
  page.objs <- obj :: page.objs;
  Hashtbl.replace t.objects obj.address obj

let find_room t words =
  match List.find_opt (fun p -> p.bump + words <= t.page_words) t.pages with
  | Some p -> p
  | None -> new_page t

let obj_at t addr =
  match Hashtbl.find_opt t.objects addr with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Kheap: %d is not a live object" addr)

(* ------------------------------------------------------------------ *)
(* Collection                                                         *)
(* ------------------------------------------------------------------ *)

let collect_now t =
  t.in_gc <- true;
  let work = ref 0 in
  (* 1. Ambiguous roots pin the pages of their referents. *)
  let pinned_pids = Hashtbl.create 16 in
  let ambiguous_objs =
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt t.objects a with
        | Some o ->
          Hashtbl.replace pinned_pids (page_of_addr t o.address) ();
          Some o
        | None -> None)
      t.ambiguous in
  t.s_pinned <- t.s_pinned + Hashtbl.length pinned_pids;
  (* 2. Trace reachability from unambiguous + ambiguous roots. *)
  let live : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec trace v =
    match v with
    | Int _ -> ()
    | Ptr a ->
      if not (Hashtbl.mem live a) then
        match Hashtbl.find_opt t.objects a with
        | None -> ()                      (* dangling: ignore, ambiguous *)
        | Some o ->
          Hashtbl.replace live a ();
          work := !work + (Array.length o.fields * scan_per_word);
          Array.iter trace o.fields in
  List.iter (fun r -> trace r.v) t.roots;
  List.iter (fun o -> trace (Ptr o.address)) ambiguous_objs;
  (* 3. Partition pages; promote pinned pages wholesale. *)
  let pinned_pages, from_pages =
    List.partition (fun p -> Hashtbl.mem pinned_pids p.pid) t.pages in
  (* 4. Copy live objects off the from-space pages. *)
  t.pages <- pinned_pages;
  let forwarding : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let freed = ref 0 in
  List.iter
    (fun p ->
      List.iter
        (fun o ->
          let words = Array.length o.fields in
          let old = o.address in
          if Hashtbl.mem live old then begin
            Hashtbl.remove t.objects old;
            let target = find_room t words in
            place t target o words;
            Hashtbl.replace forwarding old o.address;
            t.s_copied <- t.s_copied + words;
            work := !work + (words * copy_per_word)
          end else begin
            Hashtbl.remove t.objects old;
            freed := !freed + words;
            t.s_freed <- t.s_freed + words
          end)
        p.objs)
    from_pages;
  (* 5. Forward every reference (live and pinned objects, and roots). *)
  let forward = function
    | Ptr a as v ->
      (match Hashtbl.find_opt forwarding a with
       | Some a' -> Ptr a'
       | None -> v)
    | Int _ as v -> v in
  Hashtbl.iter
    (fun _ o ->
      Array.iteri (fun i v -> o.fields.(i) <- forward v) o.fields)
    t.objects;
  List.iter (fun r -> r.v <- forward r.v) t.roots;
  (* 6. Account the pause. *)
  Clock.charge t.clock (200 + !work);
  t.s_pause <- t.s_pause + 200 + !work;
  t.s_collections <- t.s_collections + 1;
  t.since_gc <- 0;
  t.in_gc <- false;
  ignore !freed

let collect t = if not t.in_gc then collect_now t

(* ------------------------------------------------------------------ *)
(* Mutator interface                                                  *)
(* ------------------------------------------------------------------ *)

let alloc t ~owner ~words =
  if words < 1 || words > t.page_words then
    invalid_arg "Kheap.alloc: bad size";
  if t.auto && t.since_gc >= t.threshold_words then collect t;
  let cost = Clock.cost t.clock in
  Clock.charge t.clock
    (cost.Cost.alloc_fixed + (words * cost.Cost.alloc_per_word));
  t.since_gc <- t.since_gc + words;
  let obj = { address = -1; owner; fields = Array.make words (Int 0) } in
  let page = find_room t words in
  place t page obj words;
  obj.address

let get_field t ~addr i = (obj_at t addr).fields.(i)

let set_field t ~addr i v = (obj_at t addr).fields.(i) <- v

let size_of t ~addr = Array.length (obj_at t addr).fields

let owner_of t ~addr = (obj_at t addr).owner

let is_live t ~addr = Hashtbl.mem t.objects addr

let add_root t ~name v =
  let r = { root_name = name; v; registered = true } in
  t.roots <- r :: t.roots;
  r

let read_root r = r.v

let write_root r v = r.v <- v

let remove_root t r =
  r.registered <- false;
  t.roots <- List.filter (fun x -> x != r) t.roots

let add_ambiguous_root t a = t.ambiguous <- a :: t.ambiguous

let clear_ambiguous_roots t = t.ambiguous <- []

let set_auto t b = t.auto <- b

let reachable_words t =
  (* Live = reachable from roots and ambiguous roots. *)
  let live = Hashtbl.create 256 in
  let rec trace = function
    | Int _ -> ()
    | Ptr a ->
      if not (Hashtbl.mem live a) then
        match Hashtbl.find_opt t.objects a with
        | None -> ()
        | Some o -> Hashtbl.replace live a (); Array.iter trace o.fields in
  List.iter (fun r -> trace r.v) t.roots;
  List.iter (fun a -> trace (Ptr a)) t.ambiguous;
  Hashtbl.fold
    (fun a _ acc -> acc + Array.length (Hashtbl.find t.objects a).fields)
    live 0

let live_words t = reachable_words t

let heap_words t =
  Hashtbl.fold (fun _ o acc -> acc + Array.length o.fields) t.objects 0

let owner_words t ~owner =
  Hashtbl.fold
    (fun _ o acc ->
      if String.equal o.owner owner then acc + Array.length o.fields else acc)
    t.objects 0

let stats t = {
  collections = t.s_collections;
  words_copied = t.s_copied;
  pages_pinned = t.s_pinned;
  words_freed = t.s_freed;
  pause_cycles = t.s_pause;
}
