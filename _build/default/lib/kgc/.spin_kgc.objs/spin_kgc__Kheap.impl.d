lib/kgc/kheap.ml: Array Hashtbl List Printf Spin_machine String
