lib/kgc/kheap.mli: Spin_machine
