(** The kernel heap and its trace-based, mostly-copying garbage
    collector (paper, section 5.5; Bartlett 1988).

    The collector is the safety net that lets SPIN give extensions
    automatic storage management: resources released by an extension
    "either through inaction or as a result of premature termination"
    are eventually reclaimed, and no extension can free an object
    someone else still references.

    Mostly-copying: unambiguous roots (registered handles) are updated
    when their referents move; *ambiguous* roots — integers that might
    be addresses, e.g. values found in thread stacks — pin the whole
    page containing their referent, which is then promoted wholesale
    (its garbage included, exactly the conservatism of the real
    collector). Everything reachable on unpinned pages is copied to
    fresh pages; unpinned from-space pages are freed.

    Object addresses are therefore stable only for pinned objects;
    hold objects through {!root}s, as kernel code holds them through
    typed pointers. *)

type t

type value =
  | Ptr of int                  (** heap address *)
  | Int of int                  (** immediate *)

type root
(** An unambiguous root: the collector updates it when the referent
    moves. *)

type gc_stats = {
  collections : int;
  words_copied : int;
  pages_pinned : int;           (** cumulative, over all collections *)
  words_freed : int;
  pause_cycles : int;           (** cumulative stop-the-world time *)
}

val create :
  ?page_words:int -> ?threshold_words:int ->
  Spin_machine.Clock.t -> unit -> t
(** [threshold_words] of allocation between automatic collections
    (default 16384); [page_words] is the collector page size in words
    (default 1024). *)

val alloc : t -> owner:string -> words:int -> int
(** Allocate an object of [words] fields (all [Int 0]), charging the
    allocation cost; may first run a collection when the heap is
    enabled and the threshold is reached. Returns its address.
    Raises [Invalid_argument] for sizes < 1 or > page_words. *)

val get_field : t -> addr:int -> int -> value
(** Raises [Invalid_argument] if the address is not a live object. *)

val set_field : t -> addr:int -> int -> value -> unit

val size_of : t -> addr:int -> int

val owner_of : t -> addr:int -> string

val is_live : t -> addr:int -> bool

val add_root : t -> name:string -> value -> root

val read_root : root -> value

val write_root : root -> value -> unit

val remove_root : t -> root -> unit

val add_ambiguous_root : t -> int -> unit
(** A word that might be a pointer (stack scanning). *)

val clear_ambiguous_roots : t -> unit

val set_auto : t -> bool -> unit
(** Disable to measure fast paths without collection (section 5.5's
    experiment: numbers do not change). *)

val collect : t -> unit
(** Stop-the-world collection now. *)

val live_words : t -> int
(** Words in live objects (pinned garbage not counted). *)

val heap_words : t -> int
(** Words of heap pages currently held (including pinned garbage). *)

val owner_words : t -> owner:string -> int
(** Live words attributed to one owner (extension accounting). *)

val stats : t -> gc_stats
