lib/netfs/net_fs.mli: Bytes Spin_fs Spin_net
