lib/netfs/net_fs.ml: Bytes Host Int32 Ip Result Rpc Spin_dstruct Spin_fs Spin_net String
