(** The network-based file system (the paper's `core` component
    provides "a disk-based and network-based file system").

    A server host exports its {!Spin_fs.Simple_fs} volume over the RPC
    extension; clients see the same whole-file interface. Service
    procedures run on kernel strands, so they block on the server's
    disk without stalling its protocol input thread. The client keeps
    a small write-through name cache (invalidated by its own writes;
    remote writers are visible after {!Client.invalidate}). *)

module Server : sig
  type t

  val export : Spin_net.Host.t -> Spin_fs.Simple_fs.t -> t
  (** Registers the nfs.* procedures on the host's RPC service. *)

  val requests_served : t -> int
end

module Client : sig
  type t

  type error = Remote_failure | Fs_error of string

  val connect :
    ?cache_bytes:int -> Spin_net.Host.t -> server:Spin_net.Ip.addr -> t

  val create : t -> name:string -> (unit, error) result

  val write : t -> name:string -> Bytes.t -> (unit, error) result

  val read : t -> name:string -> (Bytes.t, error) result
  (** Served from the client cache when possible. *)

  val size : t -> name:string -> (int, error) result

  val exists : t -> name:string -> bool

  val delete : t -> name:string -> (unit, error) result

  val list_files : t -> (string list, error) result

  val invalidate : t -> name:string -> unit

  val cache_hits : t -> int

  val rpc_calls : t -> int
end
