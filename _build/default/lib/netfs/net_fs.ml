open Spin_net
module Simple_fs = Spin_fs.Simple_fs
module Lru = Spin_dstruct.Lru

(* Wire helpers: [len u16][name][payload]. *)
let encode_name ?(payload = Bytes.empty) name =
  let nlen = String.length name in
  let b = Bytes.create (2 + nlen + Bytes.length payload) in
  Bytes.set_uint16_le b 0 nlen;
  Bytes.blit_string name 0 b 2 nlen;
  Bytes.blit payload 0 b (2 + nlen) (Bytes.length payload);
  b

let decode_name b =
  let nlen = Bytes.get_uint16_le b 0 in
  (Bytes.sub_string b 2 nlen, Bytes.sub b (2 + nlen) (Bytes.length b - 2 - nlen))

(* Replies: [ok u8][payload | error string]. *)
let reply_ok ?(payload = Bytes.empty) () =
  let b = Bytes.create (1 + Bytes.length payload) in
  Bytes.set_uint8 b 0 1;
  Bytes.blit payload 0 b 1 (Bytes.length payload);
  b

let reply_error msg =
  let b = Bytes.create (1 + String.length msg) in
  Bytes.set_uint8 b 0 0;
  Bytes.blit_string msg 0 b 1 (String.length msg);
  b

module Server = struct
  type t = {
    fs : Simple_fs.t;
    mutable served : int;
  }

  let guard t f args =
    t.served <- t.served + 1;
    try f args
    with Simple_fs.Fs_error e -> reply_error (Simple_fs.error_to_string e)

  let export host fs =
    let t = { fs; served = 0 } in
    let rpc = host.Host.rpc in
    Rpc.export rpc ~name:"nfs.create" (guard t (fun args ->
      let name, _ = decode_name args in
      Simple_fs.create t.fs ~name;
      reply_ok ()));
    Rpc.export rpc ~name:"nfs.write" (guard t (fun args ->
      let name, data = decode_name args in
      if not (Simple_fs.exists t.fs ~name) then Simple_fs.create t.fs ~name;
      Simple_fs.write t.fs ~name data;
      reply_ok ()));
    Rpc.export rpc ~name:"nfs.read" (guard t (fun args ->
      let name, _ = decode_name args in
      reply_ok ~payload:(Simple_fs.read t.fs ~name) ()));
    Rpc.export rpc ~name:"nfs.size" (guard t (fun args ->
      let name, _ = decode_name args in
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (Simple_fs.size t.fs ~name));
      reply_ok ~payload:b ()));
    Rpc.export rpc ~name:"nfs.exists" (guard t (fun args ->
      let name, _ = decode_name args in
      let b = Bytes.create 1 in
      Bytes.set_uint8 b 0 (if Simple_fs.exists t.fs ~name then 1 else 0);
      reply_ok ~payload:b ()));
    Rpc.export rpc ~name:"nfs.delete" (guard t (fun args ->
      let name, _ = decode_name args in
      Simple_fs.delete t.fs ~name;
      reply_ok ()));
    Rpc.export rpc ~name:"nfs.list" (guard t (fun _ ->
      reply_ok ~payload:(Bytes.of_string
                           (String.concat "\n" (Simple_fs.list_files t.fs))) ()));
    t

  let requests_served t = t.served
end

module Client = struct
  type error = Remote_failure | Fs_error of string

  type t = {
    host : Host.t;
    server : Ip.addr;
    cache : (string, Bytes.t) Lru.t;
    mutable hits : int;
    mutable calls : int;
  }

  let connect ?(cache_bytes = 256 * 1024) host ~server =
    ignore cache_bytes;
    { host; server; cache = Lru.create ~capacity:64 ();
      hits = 0; calls = 0 }

  let call t ~name args =
    t.calls <- t.calls + 1;
    match Rpc.call t.host.Host.rpc ~dst:t.server ~name args with
    | None -> Error Remote_failure
    | Some reply ->
      if Bytes.length reply < 1 then Error Remote_failure
      else if Bytes.get_uint8 reply 0 = 1 then
        Ok (Bytes.sub reply 1 (Bytes.length reply - 1))
      else
        Error (Fs_error (Bytes.sub_string reply 1 (Bytes.length reply - 1)))

  let unit_result = Result.map (fun (_ : Bytes.t) -> ())

  let create t ~name = unit_result (call t ~name:"nfs.create" (encode_name name))

  let write t ~name data =
    Lru.remove t.cache name;
    unit_result (call t ~name:"nfs.write" (encode_name ~payload:data name))

  let read t ~name =
    match Lru.find t.cache name with
    | Some data -> t.hits <- t.hits + 1; Ok (Bytes.copy data)
    | None ->
      (match call t ~name:"nfs.read" (encode_name name) with
       | Ok data -> Lru.add t.cache name (Bytes.copy data); Ok data
       | Error _ as e -> e)

  let size t ~name =
    Result.map (fun b -> Int32.to_int (Bytes.get_int32_le b 0))
      (call t ~name:"nfs.size" (encode_name name))

  let exists t ~name =
    match call t ~name:"nfs.exists" (encode_name name) with
    | Ok b -> Bytes.length b > 0 && Bytes.get_uint8 b 0 = 1
    | Error _ -> false

  let delete t ~name =
    Lru.remove t.cache name;
    unit_result (call t ~name:"nfs.delete" (encode_name name))

  let list_files t =
    Result.map
      (fun b ->
        match Bytes.to_string b with
        | "" -> []
        | s -> String.split_on_char '\n' s)
      (call t ~name:"nfs.list" Bytes.empty)

  let invalidate t ~name = Lru.remove t.cache name

  let cache_hits t = t.hits

  let rpc_calls t = t.calls
end
