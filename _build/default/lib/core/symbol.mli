(** Linker symbols: an interface-qualified name with a declared type. *)

type t = {
  intf : string;                (** interface name, e.g. "Console" *)
  name : string;                (** item name, e.g. "Open" *)
  ty : Ty.t;
}

val make : intf:string -> name:string -> Ty.t -> t

val full_name : t -> string
(** ["Console.Open"]. *)

val same_name : t -> t -> bool
(** Name equality, ignoring types (resolution matches by name, then
    checks types). *)

val compatible : expected:t -> found:t -> bool

val to_string : t -> string
