(** The in-kernel nameserver.

    A module that exports an interface wraps it in a domain and
    registers the domain under the interface's global name (e.g.
    [Console.InterfaceName = "ConsoleService"]). Importers look names
    up with their identity; an exporter may attach an authorization
    procedure that is consulted on every import (paper, section 3.1,
    "restrict access at the time of the import"). *)

type t

type identity = { who : string }
(** The importer's identity, as presented to authorizers. *)

type lookup_error = Unknown_name | Denied

val create : Spin_machine.Clock.t -> t

val register :
  t -> name:string -> ?authorize:(identity -> bool) -> Kdomain.t -> unit
(** Re-registering a name replaces the binding (a new version of the
    service). *)

val unregister : t -> name:string -> unit

val lookup : t -> name:string -> identity -> (Kdomain.t, lookup_error) result
(** Charges a procedure call for the authorizer upcall when one is
    installed. *)

val names : t -> string list
(** Registered names, in registration order. *)

val denials : t -> int
