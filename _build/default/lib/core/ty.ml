type t =
  | Unit
  | Bool
  | Int
  | Text
  | Bytes
  | Opaque of string
  | Ref of t
  | Array of t
  | Proc of t list * t
  | Record of (string * t) list

let rec equal a b =
  match a, b with
  | Unit, Unit | Bool, Bool | Int, Int | Text, Text | Bytes, Bytes -> true
  | Opaque x, Opaque y -> String.equal x y
  | Ref x, Ref y | Array x, Array y -> equal x y
  | Proc (xs, x), Proc (ys, y) ->
    List.length xs = List.length ys && List.for_all2 equal xs ys && equal x y
  | Record xs, Record ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (nx, tx) (ny, ty) -> String.equal nx ny && equal tx ty)
         xs ys
  | (Unit | Bool | Int | Text | Bytes | Opaque _ | Ref _ | Array _
    | Proc _ | Record _), _ -> false

let rec to_string = function
  | Unit -> "unit"
  | Bool -> "bool"
  | Int -> "int"
  | Text -> "text"
  | Bytes -> "bytes"
  | Opaque n -> n
  | Ref t -> "ref " ^ to_string t
  | Array t -> to_string t ^ " array"
  | Proc (args, r) ->
    let args = match args with [] -> "unit" | _ -> String.concat " * " (List.map to_string args) in
    "(" ^ args ^ " -> " ^ to_string r ^ ")"
  | Record fields ->
    "{" ^ String.concat "; " (List.map (fun (n, t) -> n ^ " : " ^ to_string t) fields) ^ "}"
