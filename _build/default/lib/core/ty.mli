(** A small structural type language standing in for Modula-3
    signatures.

    The in-kernel linker compares the declared type of an imported
    symbol against the exported one; a mismatch is a link-time error,
    reproducing the paper's "type conflict results in an error"
    behaviour for redefined interface types. Opaque types are branded
    by name ([Opaque "Console.T"]), so a redefinition is a different
    type. *)

type t =
  | Unit
  | Bool
  | Int
  | Text
  | Bytes
  | Opaque of string            (** a branded opaque type, e.g. "Console.T" *)
  | Ref of t
  | Array of t
  | Proc of t list * t          (** procedure: argument types and result *)
  | Record of (string * t) list

val equal : t -> t -> bool

val to_string : t -> string
