type t = ..

module type Tag = sig
  type a
  type t += T of a
end

type 'a tag = { witness : (module Tag with type a = 'a); tag_name : string }

let tag (type s) ~name () : s tag =
  let module M = struct
    type a = s
    type t += T of a
  end in
  { witness = (module M); tag_name = name }

let tag_name t = t.tag_name

(* A wrapper constructor pairs the payload with its tag name. *)
type t += Named of string * t

let pack (type s) (tag : s tag) (v : s) =
  let module M = (val tag.witness) in
  Named (tag.tag_name, M.T v)

let unpack (type s) (tag : s tag) u : s option =
  let module M = (val tag.witness) in
  match u with
  | Named (_, M.T v) -> Some v
  | _ -> None

let name = function
  | Named (n, _) -> n
  | _ -> "<raw>"
