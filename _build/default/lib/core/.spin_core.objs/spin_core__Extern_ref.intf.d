lib/core/extern_ref.mli: Univ
