lib/core/symbol.ml: String Ty
