lib/core/capability.mli:
