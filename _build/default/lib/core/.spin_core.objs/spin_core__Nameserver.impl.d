lib/core/nameserver.ml: Hashtbl Kdomain List Spin_machine String
