lib/core/object_file.ml: List Symbol Univ
