lib/core/nameserver.mli: Kdomain Spin_machine
