lib/core/ty.mli:
