lib/core/univ.ml:
