lib/core/univ.mli:
