lib/core/extern_ref.ml: Spin_dstruct Univ
