lib/core/kdomain.mli: Object_file Symbol Ty Univ
