lib/core/dispatcher.mli: Spin_machine Ty
