lib/core/capability.ml: Option Printf
