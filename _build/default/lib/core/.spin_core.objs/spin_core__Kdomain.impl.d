lib/core/kdomain.ml: List Object_file Option Printf String Symbol Ty Univ
