lib/core/symbol.mli: Ty
