lib/core/object_file.mli: Symbol Univ
