lib/core/dispatcher.ml: Fun Hashtbl List Option Printf Queue Spin_machine Ty
