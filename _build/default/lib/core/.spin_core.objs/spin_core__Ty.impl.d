lib/core/ty.ml: List String
