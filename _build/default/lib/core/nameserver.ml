type identity = { who : string }

type lookup_error = Unknown_name | Denied

type binding = {
  domain : Kdomain.t;
  authorize : (identity -> bool) option;
}

type t = {
  clock : Spin_machine.Clock.t;
  table : (string, binding) Hashtbl.t;
  mutable order : string list;          (* reverse registration order *)
  mutable denials : int;
}

let create clock =
  { clock; table = Hashtbl.create 64; order = []; denials = 0 }

let register t ~name ?authorize domain =
  if not (Hashtbl.mem t.table name) then t.order <- name :: t.order;
  Hashtbl.replace t.table name { domain; authorize }

let unregister t ~name =
  Hashtbl.remove t.table name;
  t.order <- List.filter (fun n -> not (String.equal n name)) t.order

let lookup t ~name identity =
  match Hashtbl.find_opt t.table name with
  | None -> Error Unknown_name
  | Some { domain; authorize } ->
    match authorize with
    | None -> Ok domain
    | Some auth ->
      (* The importer, exporter and authorizer interact through
         direct procedure calls — charge one. *)
      Spin_machine.Clock.charge t.clock
        (Spin_machine.Clock.cost t.clock).Spin_machine.Cost.proc_call;
      if auth identity then Ok domain
      else begin
        t.denials <- t.denials + 1;
        Error Denied
      end

let names t = List.rev t.order

let denials t = t.denials
