type t = { intf : string; name : string; ty : Ty.t }

let make ~intf ~name ty = { intf; name; ty }

let full_name s = s.intf ^ "." ^ s.name

let same_name a b = String.equal (full_name a) (full_name b)

let compatible ~expected ~found = Ty.equal expected.ty found.ty

let to_string s = full_name s ^ " : " ^ Ty.to_string s.ty
