type 'a t = {
  id : int;
  owner : string;
  mutable resource : 'a option;
}

exception Revoked of string

let next_id = ref 0

let mint ~owner v =
  incr next_id;
  { id = !next_id; owner; resource = Some v }

let deref c =
  match c.resource with
  | Some v -> v
  | None -> raise (Revoked (Printf.sprintf "%s#%d" c.owner c.id))

let deref_opt c = c.resource

let revoke c = c.resource <- None

let is_valid c = Option.is_some c.resource

let owner c = c.owner

let id c = c.id

let equal a b = a.id = b.id
