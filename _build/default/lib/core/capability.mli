(** Capabilities: unforgeable references to kernel resources.

    In SPIN a capability *is* a type-safe pointer; here it is a value
    of an abstract type that only the owning service can mint. A
    capability can be revoked by its owner, after which dereferencing
    raises {!Revoked} — the analogue of the collector reclaiming a
    resource whose extension died. *)

type 'a t

exception Revoked of string
(** Carries the owner and id of the dead capability. *)

val mint : owner:string -> 'a -> 'a t
(** [mint ~owner v] creates a capability for resource [v]. *)

val deref : 'a t -> 'a
(** Raises {!Revoked} if the capability was revoked. *)

val deref_opt : 'a t -> 'a option

val revoke : 'a t -> unit
(** Idempotent. *)

val is_valid : 'a t -> bool

val owner : 'a t -> string

val id : 'a t -> int
(** Unique across all capabilities in the process. *)

val equal : 'a t -> 'a t -> bool
