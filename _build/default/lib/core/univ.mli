(** Universal values: type-safe injection and projection.

    Interfaces export heterogeneous items (procedures, events,
    capabilities) through domains; a [Univ.t] carries any value
    together with the runtime evidence needed to recover it at its
    original type. Projection with the wrong tag yields [None] — the
    moral equivalent of Modula-3 refusing an ill-typed narrow. *)

type t

type 'a tag

val tag : name:string -> unit -> 'a tag
(** [tag ~name ()] mints a fresh tag. Two tags never alias, even at
    the same type — branding, as in Modula-3's [BRANDED]. *)

val tag_name : 'a tag -> string

val pack : 'a tag -> 'a -> t

val unpack : 'a tag -> t -> 'a option
(** [unpack tag u] recovers the value iff [u] was packed with exactly
    [tag]. *)

val name : t -> string
(** The tag name a value was packed with (for diagnostics). *)
