(* Host-side throughput of the discrete-event engine itself.

   Everything else in this harness reports virtual time; this
   experiment reports how fast the simulator's own machinery turns on
   the host — wall-clock events per second, simulated microseconds per
   wall second, and minor-heap words allocated per event. Three
   workloads exercise the engine from different angles:

     - a timer storm: an RTO-like arm/cancel/re-arm churn over tens of
       thousands of timers, run both on today's timer-wheel [Sim] and
       on an inlined replica of the binary-heap engine it replaced
       (flag-and-skip cancellation, O(log n) sift per event), so the
       speedup is measured against a live baseline, not a memory;
     - an HTTP load replay: the web fixture's closed-loop GET traffic,
       where engine time is buried under protocol work;
     - a fuzz-campaign slice: seeded schedule fuzzing, the workload
       whose wall-clock cost bounds how many seeds a campaign covers.

   The counted metrics (events processed, minor words per event) are
   deterministic and gated by check_perf; the wall-clock rates are
   recorded in the JSON artifact for trending but not gated — CI
   machines are too noisy to fail a build on host throughput.

     dune exec bench/main.exe engine
     dune exec bench/main.exe -- --json BENCH_engine.json engine *)

module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Machine = Spin_machine.Machine
module Trace = Spin_machine.Trace
module Sched = Spin_sched.Sched
module Sched_fuzz = Spin_sched.Sched_fuzz
module Pqueue = Spin_dstruct.Pqueue
module Host = Spin_net.Host

(* ------------------------------------------------------------------ *)
(* The heap engine the wheel replaced, as a measurable baseline       *)
(* ------------------------------------------------------------------ *)

module Heap_engine = struct
  type ev = {
    e_time : int;
    e_action : unit -> unit;
    mutable e_cancelled : bool;
  }

  type t = {
    q : ev Pqueue.t;                (* FIFO tie-break is Pqueue's own *)
    mutable now : int;
    mutable fired : int;
  }

  let create () =
    { q = Pqueue.create ~cmp:(fun a b -> compare a.e_time b.e_time);
      now = 0; fired = 0 }

  let at t time action =
    Pqueue.add t.q
      { e_time = max time t.now; e_action = action; e_cancelled = false }

  (* The old [Sim.cancel]: flag it, leave it queued until its deadline. *)
  let cancel e = (Pqueue.value e).e_cancelled <- true

  let advance t time =
    t.now <- time;
    let rec fire () =
      match Pqueue.peek t.q with
      | Some e when e.e_time <= time ->
        ignore (Pqueue.pop t.q);
        if not e.e_cancelled then begin
          t.fired <- t.fired + 1;
          e.e_action ()
        end;
        fire ()
      | _ -> () in
    fire ()

  let drain t =
    let rec go () =
      match Pqueue.peek t.q with
      | Some e -> advance t e.e_time; go ()
      | None -> () in
    go ()
end

(* ------------------------------------------------------------------ *)
(* Timer storm                                                        *)
(* ------------------------------------------------------------------ *)

let storm_timers = 10_000
let storm_rounds = 30
let storm_step = 2_000                     (* cycles advanced per round *)

(* Deterministic delays so both engines run the identical sequence.
   Mostly short (wheel level 0-1), every 16th far out (levels 2-3),
   like a connection table's mix of tick timers and long RTOs. *)
let storm_delays =
  let state = ref 0x12345678 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state lsr 5 in
  Array.init (storm_timers * (storm_rounds + 1)) (fun i ->
    if i mod 16 = 0 then 1 + (rand () mod (1 lsl 22))
    else 50 + (rand () mod 5_000))

let nop () = ()

(* Each round: every timer disarms whatever it had pending (fired or
   not — the caller can't know, which is exactly why stale-handle
   cancel must be cheap and safe) and re-arms at now + delay. *)
type storm_result = {
  st_events : int;                         (* arms, = fires + cancels *)
  st_wall_s : float;
  st_minor_words : float;
}

let measured f =
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Report.wall_s () in
  let events = f () in
  let wall = Report.wall_s () -. t0 in
  let words = Gc.minor_words () -. w0 in
  { st_events = events; st_wall_s = wall; st_minor_words = words }

let storm_wheel () =
  measured (fun () ->
    let clock = Clock.create Cost.alpha_133 in
    let sim = Sim.create clock in
    let handles = Array.make storm_timers None in
    let events = ref 0 in
    let di = ref 0 in
    let arm i =
      let d = storm_delays.(!di) in
      incr di;
      incr events;
      handles.(i) <- Some (Sim.after sim d nop) in
    for i = 0 to storm_timers - 1 do arm i done;
    for _ = 1 to storm_rounds do
      Clock.skip_to clock (Clock.now clock + storm_step);
      for i = 0 to storm_timers - 1 do
        (match handles.(i) with
         | Some h -> Sim.cancel sim h
         | None -> ());
        arm i
      done
    done;
    Sim.run sim;
    let s = Sim.stats sim in
    assert (s.Sim.fired + s.Sim.cancelled = !events);
    !events)

let storm_heap () =
  measured (fun () ->
    let t = Heap_engine.create () in
    let handles = Array.make storm_timers None in
    let events = ref 0 in
    let di = ref 0 in
    let arm i =
      let d = storm_delays.(!di) in
      incr di;
      incr events;
      handles.(i) <- Some (Heap_engine.at t (t.Heap_engine.now + d) nop) in
    for i = 0 to storm_timers - 1 do arm i done;
    for _ = 1 to storm_rounds do
      Heap_engine.advance t (t.Heap_engine.now + storm_step);
      for i = 0 to storm_timers - 1 do
        (match handles.(i) with
         | Some h -> Heap_engine.cancel h
         | None -> ());
        arm i
      done
    done;
    Heap_engine.drain t;
    !events)

(* ------------------------------------------------------------------ *)
(* HTTP load replay and fuzz-campaign slice                           *)
(* ------------------------------------------------------------------ *)

let http_clients = 8
let http_requests_per_client = 20

let http_replay () =
  let clock, client, server = B_extra.web_fixture () in
  let total = http_clients * http_requests_per_client in
  ignore (Sched.spawn client.Host.sched ~name:"driver" (fun () ->
    B_extra.http_get clock client;                     (* warm caches *)
    for c = 1 to http_clients do
      ignore (Sched.spawn client.Host.sched
                ~name:(Printf.sprintf "client-%d" c) (fun () ->
                  for _ = 1 to http_requests_per_client do
                    B_extra.http_get clock client
                  done))
    done));
  let v0 = Clock.now_us clock in
  let r = measured (fun () -> Host.run_all [ client; server ]; total) in
  (r, Clock.now_us clock -. v0,
   (Sim.stats client.Host.machine.Machine.sim).Sim.fired)

let fuzz_seeds = 6

let fuzz_slice () =
  let sim_us = ref 0. in
  let decisions = ref 0 in
  let r =
    measured (fun () ->
      for seed = 1 to fuzz_seeds do
        let m = Machine.create ~name:"engine-fuzz" ~mem_mb:4 () in
        let d = Spin_core.Dispatcher.create m.Machine.clock in
        let s = Sched.create m.Machine.sim d in
        let fz =
          Sched_fuzz.attach ~cpu:m.Machine.cpu ~dispatcher:d
            ~mean_period:200 ~seed s in
        for i = 1 to 8 do
          ignore (Sched.spawn s ~name:(Printf.sprintf "w%d" i) (fun () ->
            for _ = 1 to 40 do
              Clock.charge m.Machine.clock (50 * i);
              Sched.yield s;
              Sched.sleep_us s (float_of_int i *. 1.5)
            done))
        done;
        Sched.run s;
        let st = Sched_fuzz.stats fz in
        decisions := !decisions + st.Sched_fuzz.decisions;
        Sched_fuzz.detach fz;
        sim_us := !sim_us +. Clock.now_us m.Machine.clock
      done;
      !decisions) in
  (r, !sim_us)

(* ------------------------------------------------------------------ *)
(* The experiment                                                     *)
(* ------------------------------------------------------------------ *)

let per_sec n wall = if wall > 0. then float_of_int n /. wall else nan

let run () =
  Report.header "Engine throughput (host wall clock)";

  ignore (storm_wheel ());                             (* warm up *)
  let wheel = storm_wheel () in
  let heap = storm_heap () in
  let wheel_evs = per_sec wheel.st_events wheel.st_wall_s in
  let heap_evs = per_sec heap.st_events heap.st_wall_s in
  let wheel_wpe = wheel.st_minor_words /. float_of_int wheel.st_events in
  let heap_wpe = heap.st_minor_words /. float_of_int heap.st_events in
  Printf.printf
    "  timer storm: %d timers, %d rounds of cancel + re-arm\n"
    storm_timers storm_rounds;
  Printf.printf "    %-18s %12s %16s\n" "" "events/sec" "minor words/ev";
  Printf.printf "    %-18s %12.0f %16.1f\n" "heap (baseline)" heap_evs heap_wpe;
  Printf.printf "    %-18s %12.0f %16.1f\n" "timer wheel" wheel_evs wheel_wpe;
  Printf.printf "    speedup x%.2f, allocation x%.2f\n"
    (wheel_evs /. heap_evs) (wheel_wpe /. heap_wpe);
  Report.metric ~unit_:"count" ~name:"storm events processed"
    (float_of_int wheel.st_events);
  Report.metric ~unit_:"ev/s" ~name:"storm wheel events/sec" wheel_evs;
  Report.metric ~unit_:"ev/s" ~name:"storm heap events/sec" heap_evs;
  Report.metric ~unit_:"x" ~name:"storm wheel speedup"
    (wheel_evs /. heap_evs);
  Report.metric ~unit_:"words" ~name:"storm wheel minor words/event" wheel_wpe;
  Report.metric ~unit_:"words" ~name:"storm heap minor words/event" heap_wpe;

  let http, http_sim_us, http_fired = http_replay () in
  let http_sim_rate =
    if http.st_wall_s > 0. then http_sim_us /. http.st_wall_s else nan in
  Printf.printf
    "  HTTP replay: %d requests, %d engine events fired\n"
    http.st_events http_fired;
  Printf.printf "    %.0f requests/sec, %.0f sim-us per wall-second\n"
    (per_sec http.st_events http.st_wall_s) http_sim_rate;
  Report.metric ~unit_:"count" ~name:"http events fired"
    (float_of_int http_fired);
  Report.metric ~unit_:"ev/s" ~name:"http requests/sec"
    (per_sec http.st_events http.st_wall_s);
  Report.metric ~unit_:"us/s" ~name:"http sim-us per wall-second"
    http_sim_rate;
  Report.metric ~unit_:"words" ~name:"http minor words/request"
    (http.st_minor_words /. float_of_int http.st_events);

  let fuzz, fuzz_sim_us = fuzz_slice () in
  let fuzz_sim_rate =
    if fuzz.st_wall_s > 0. then fuzz_sim_us /. fuzz.st_wall_s else nan in
  Printf.printf "  fuzz slice: %d seeds, %d scheduling decisions\n"
    fuzz_seeds fuzz.st_events;
  Printf.printf "    %.0f decisions/sec, %.0f sim-us per wall-second\n"
    (per_sec fuzz.st_events fuzz.st_wall_s) fuzz_sim_rate;
  Report.metric ~unit_:"count" ~name:"fuzz decisions"
    (float_of_int fuzz.st_events);
  Report.metric ~unit_:"dec/s" ~name:"fuzz decisions/sec"
    (per_sec fuzz.st_events fuzz.st_wall_s);
  Report.metric ~unit_:"us/s" ~name:"fuzz sim-us per wall-second"
    fuzz_sim_rate
