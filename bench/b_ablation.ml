(* Ablations: how much each SPIN design decision buys.

   The paper argues for co-location (extensions in the kernel address
   space), the dispatcher's single-handler fast path, and guard-based
   per-instance dispatch. Each ablation keeps everything else fixed
   and removes one mechanism. *)

module Kernel = Spin.Kernel
module Dispatcher = Spin_core.Dispatcher
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Machine = Spin_machine.Machine
module Addr = Spin_machine.Addr
module Vm_ext = Spin_vm.Vm_ext
module Kheap = Spin_kgc.Kheap

(* ------------------------------------------------------------------ *)
(* Ablation 1: co-location                                            *)
(* ------------------------------------------------------------------ *)

(* Without co-location, each handler invocation is an upcall to user
   space (boundary crossings and an address-space switch each way),
   and each service call from the handler is a system call — the
   microkernel structure. We install exactly that structure and rerun
   the Table 4 "Fault" and "Appel1" workloads. *)
let colocation () =
  Report.header "Ablation: co-location (Table 4 workloads, us)";
  let measure ~colocated =
    let k = Kernel.boot ~name:"abl" () in
    let clock = k.Kernel.machine.Machine.clock in
    let hw = k.Kernel.machine.Machine.cost in
    let ext = Vm_ext.create k.Kernel.vm ~app:"abl" ~pages:8 in
    Vm_ext.activate ext;
    let crossing () =
      if not colocated then begin
        (* kernel -> user upcall and back, with address-space switches *)
        Clock.charge clock (2 * (hw.Cost.trap_entry + hw.Cost.trap_exit));
        Clock.charge clock (2 * hw.Cost.addr_space_switch)
      end in
    let service_call () =
      if not colocated then
        Clock.charge clock (hw.Cost.trap_entry + hw.Cost.trap_exit + 105) in
    Vm_ext.on_protection_fault ext (fun page ->
      crossing ();
      service_call ();
      Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write);
    Vm_ext.protect ext ~first:0 ~count:1 Addr.prot_read;
    let fault = Kernel.stamp_us k (fun () -> Vm_ext.write ext ~page:0 1L) in
    Vm_ext.on_protection_fault ext (fun page ->
      crossing ();
      service_call ();
      Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write;
      service_call ();
      Vm_ext.protect ext ~first:((page + 1) mod 8) ~count:1 Addr.prot_read);
    Vm_ext.protect ext ~first:2 ~count:1 Addr.prot_read;
    let appel1 = Kernel.stamp_us k (fun () -> Vm_ext.write ext ~page:2 1L) in
    (fault, appel1) in
  let (f1, a1) = measure ~colocated:true in
  let (f0, a0) = measure ~colocated:false in
  Printf.printf "%-34s %12s %12s %8s\n" "workload" "co-located" "user-level"
    "ratio";
  Printf.printf "%-34s %10.1fus %10.1fus %7.1fx\n" "Fault" f1 f0 (f0 /. f1);
  Printf.printf "%-34s %10.1fus %10.1fus %7.1fx\n" "Appel1" a1 a0 (a0 /. a1);
  Report.note
    "  Boundary crossings alone double the fault path. The baselines\n\
    \  are another ~5x worse again because their *generic* delivery\n\
    \  machinery (signals, exception messages) cannot be specialized\n\
    \  away -- compare the OSF/1 and Mach columns of Table 4.\n"

(* ------------------------------------------------------------------ *)
(* Ablation 2: the single-handler fast path                           *)
(* ------------------------------------------------------------------ *)

let fast_path () =
  Report.header "Ablation: dispatcher fast path";
  let k = Kernel.boot ~name:"abl2" () in
  let fast = Dispatcher.declare k.Kernel.dispatcher ~name:"A.Fast" ~owner:"A"
      (fun () -> ()) in
  let slow = Dispatcher.declare k.Kernel.dispatcher ~name:"A.Slow" ~owner:"A"
      (fun () -> ()) in
  (* Any guard forces the dispatcher to take an active role. *)
  ignore (Dispatcher.remove_primary slow ~requester:"A" |> ignore;
          Dispatcher.install_exn slow ~installer:"A" ~guard:(fun () -> true)
            (fun () -> ()));
  let f = Kernel.stamp_us k (fun () -> Dispatcher.raise_event fast ()) in
  let s = Kernel.stamp_us k (fun () -> Dispatcher.raise_event slow ()) in
  Printf.printf "  single unguarded handler (procedure call): %5.2f us\n" f;
  Printf.printf "  same handler behind one guard:             %5.2f us\n" s;
  (* Scaling with handler count. *)
  Printf.printf "  dispatch cost vs installed handlers:\n";
  List.iter
    (fun n ->
      let e = Dispatcher.declare k.Kernel.dispatcher
          ~name:(Printf.sprintf "A.N%d" n) ~owner:"A"
          ~combine:(fun _ -> ()) (fun () -> ()) in
      for _ = 1 to n do
        ignore (Dispatcher.install_exn e ~installer:"w" ~guard:(fun () -> true)
                  (fun () -> ()))
      done;
      let us = Kernel.stamp_us k (fun () -> Dispatcher.raise_event e ()) in
      Printf.printf "    %4d handlers: %8.1f us\n" n us)
    [ 1; 10; 25; 50; 100 ]

(* ------------------------------------------------------------------ *)
(* Ablation 3: guards vs handler-side demultiplexing                  *)
(* ------------------------------------------------------------------ *)

let guards () =
  Report.header "Ablation: guard-based vs handler-side demultiplexing";
  let k = Kernel.boot ~name:"abl3" () in
  let protocols = 12 in
  (* Guarded: the IP idiom — the module attaches a protocol guard to
     each installation; only the matching handler body runs. *)
  let guarded = Dispatcher.declare k.Kernel.dispatcher ~name:"A.G" ~owner:"A"
      ~combine:(fun _ -> ()) (fun (_ : int) -> ()) in
  let hits = Array.make protocols 0 in
  for p = 0 to protocols - 1 do
    ignore (Dispatcher.install_exn guarded ~installer:"proto"
              ~guard:(fun proto -> proto = p)
              (fun _ -> hits.(p) <- hits.(p) + 1))
  done;
  (* Unguarded: every handler runs and tests the protocol itself. *)
  let unguarded = Dispatcher.declare k.Kernel.dispatcher ~name:"A.U" ~owner:"A"
      ~combine:(fun _ -> ()) (fun (_ : int) -> ()) in
  let hits' = Array.make protocols 0 in
  for p = 0 to protocols - 1 do
    ignore (Dispatcher.install_exn unguarded ~installer:"proto"
              (fun proto -> if proto = p then hits'.(p) <- hits'.(p) + 1))
  done;
  let g = Kernel.stamp_us k (fun () ->
    for p = 0 to protocols - 1 do Dispatcher.raise_event guarded p done) in
  let u = Kernel.stamp_us k (fun () ->
    for p = 0 to protocols - 1 do Dispatcher.raise_event unguarded p done) in
  Printf.printf "  %d protocols, one event, %d dispatches each:\n"
    protocols protocols;
  Printf.printf "    guards filter before invocation: %7.1f us\n" g;
  Printf.printf "    every handler invoked:           %7.1f us\n" u;
  Printf.printf "    guard evaluation (%d cyc) is cheaper than handler\n"
    Dispatcher.default_costs.Dispatcher.guard_eval;
  Printf.printf "    invocation (%d cyc): dispatcher-side filtering wins %.1fx\n"
    Dispatcher.default_costs.Dispatcher.handler_invoke (u /. g)

(* ------------------------------------------------------------------ *)
(* Ablation 3b: linear guards vs indexed dispatch (5.5 future work)   *)
(* ------------------------------------------------------------------ *)

let indexed_dispatch () =
  Report.header "Ablation: linear guards vs indexed dispatch (5.5 future work)";
  let k = Kernel.boot ~name:"abl5" () in
  Printf.printf "  %8s %14s %14s\n" "keys" "guards (us)" "indexed (us)";
  List.iter
    (fun n ->
      let linear = Dispatcher.declare k.Kernel.dispatcher
          ~name:(Printf.sprintf "L%d" n) ~owner:"A"
          ~combine:(fun _ -> ()) (fun (_ : int) -> ()) in
      for p = 0 to n - 1 do
        ignore (Dispatcher.install_exn linear ~installer:"svc"
                  ~guard:(fun x -> x = p) (fun _ -> ()))
      done;
      let indexed = Dispatcher.declare k.Kernel.dispatcher
          ~name:(Printf.sprintf "I%d" n) ~owner:"A"
          ~combine:(fun _ -> ()) ~index:(fun x -> x) (fun (_ : int) -> ()) in
      for p = 0 to n - 1 do
        match Dispatcher.install_indexed indexed ~installer:"svc" ~key:p
                (fun _ -> ()) with
        | Ok _ -> ()
        | Error _ -> () 
      done;
      let l = Kernel.stamp_us k (fun () -> Dispatcher.raise_event linear (n - 1)) in
      let i = Kernel.stamp_us k (fun () -> Dispatcher.raise_event indexed (n - 1)) in
      Printf.printf "  %8d %14.2f %14.2f\n" n l i)
    [ 5; 25; 50; 100 ];
  Report.note
    "  Hashing the demultiplexing key keeps dispatch flat while linear\n\
    \  guard evaluation grows with every registered endpoint.\n"

(* ------------------------------------------------------------------ *)
(* Ablation 3c: compiled guards vs an interpreted little language     *)
(* ------------------------------------------------------------------ *)

(* Section 2's critique of "little languages" made quantitative: the
   same 64-endpoint UDP demultiplexing implemented with (a) compiled
   procedure guards, (b) the interpreted packet-filter language, and
   (c) indexed dispatch. *)
let little_language () =
  Report.header "Ablation: compiled guards vs interpreted packet filters";
  let k = Kernel.boot ~name:"abl6" () in
  let clock = k.Kernel.machine.Machine.clock in
  let endpoints = 64 in
  let frame port =
    Spin_net.Ip.encode_frame ~src:1 ~dst:2 ~proto:Spin_net.Ip.proto_udp
      (Spin_net.Udp.encode_datagram ~src_port:9 ~dst_port:port Bytes.empty) in
  let port_of pkt = Spin_net.Pkt.get_u16_le pkt 16 in
  (* (a) compiled guards *)
  let guarded = Dispatcher.declare k.Kernel.dispatcher ~name:"F.G" ~owner:"F"
      ~combine:(fun _ -> ()) (fun (_ : Spin_net.Pkt.t) -> ()) in
  for p = 0 to endpoints - 1 do
    ignore (Dispatcher.install_exn guarded ~installer:"svc"
              ~guard:(fun pkt -> port_of pkt = p) (fun _ -> ()))
  done;
  (* (b) interpreted filters, evaluated by a demux handler *)
  let programs =
    List.init endpoints (fun p -> Spin_net.Pkt_filter.match_udp_port ~port:p) in
  List.iter Spin_net.Pkt_filter.validate programs;
  let interpreted pkt =
    List.iter
      (fun prog -> ignore (Spin_net.Pkt_filter.run_view clock prog pkt))
      programs in
  (* (c) indexed dispatch *)
  let indexed = Dispatcher.declare k.Kernel.dispatcher ~name:"F.I" ~owner:"F"
      ~combine:(fun _ -> ()) ~index:port_of (fun (_ : Spin_net.Pkt.t) -> ()) in
  for p = 0 to endpoints - 1 do
    (match Dispatcher.install_indexed indexed ~installer:"svc" ~key:p
             (fun _ -> ()) with
     | Ok _ -> () | Error _ -> ())
  done;
  let pkt = frame (endpoints - 1) in
  let g = Kernel.stamp_us k (fun () -> Dispatcher.raise_event guarded pkt) in
  let i = Kernel.stamp_us k (fun () -> interpreted pkt) in
  let x = Kernel.stamp_us k (fun () -> Dispatcher.raise_event indexed pkt) in
  Printf.printf "  %d endpoints, one packet demultiplexed:\n" endpoints;
  Printf.printf "    compiled procedure guards:     %8.1f us\n" g;
  Printf.printf "    interpreted filter programs:   %8.1f us  (%.1fx guards)\n"
    i (i /. g);
  Printf.printf "    indexed dispatch:              %8.1f us\n" x;
  Report.note
    "  Section 2's claim, measured: interpretation overhead dominates,\n\
    \  while compiled guards stay linear and indexing stays flat.\n"

(* ------------------------------------------------------------------ *)
(* Ablation 4: collector pause vs live heap                           *)
(* ------------------------------------------------------------------ *)

let gc_pause () =
  Report.header "Ablation: collector pause vs live heap size";
  Printf.printf "  %12s %12s %14s\n" "live words" "pause (us)" "us/Kword live";
  List.iter
    (fun live_objects ->
      let clock = Clock.create Cost.alpha_133 in
      let h = Kheap.create clock () in
      Kheap.set_auto h false;
      let roots =
        List.init live_objects (fun i ->
          let a = Kheap.alloc h ~owner:"app" ~words:32 in
          Kheap.add_root h ~name:(string_of_int i) (Kheap.Ptr a)) in
      ignore roots;
      for _ = 1 to 500 do ignore (Kheap.alloc h ~owner:"garbage" ~words:32) done;
      let pause =
        Cost.cycles_to_us Cost.alpha_133
          (Clock.stamp clock (fun () -> Kheap.collect h)) in
      let live = live_objects * 32 in
      Printf.printf "  %12d %12.1f %14.2f\n" live pause
        (if live = 0 then 0. else pause /. (float_of_int live /. 1000.)))
    [ 0; 8; 32; 128; 512 ];
  Report.note
    "  Copying-collector pauses scale with live data, not heap size —\n\
    \  the structural reason the paper can leave collection on.\n"

(* ------------------------------------------------------------------ *)
(* Ablation 5: tracing overhead on the dispatch hot path              *)
(* ------------------------------------------------------------------ *)

(* Tracing charges no virtual cycles (it observes the simulation
   without perturbing the latencies it measures), so its cost is host
   time only: the disabled tracer is one mutable-bool check per
   instrumentation site. Measured with host wall time, with the
   virtual-cycle neutrality asserted alongside. *)
let trace_overhead () =
  Report.header "Ablation: tracing overhead (dispatcher fast path, host time)";
  let k = Kernel.boot ~name:"abl7" () in
  let tr = Kernel.trace k in
  let e = Dispatcher.declare k.Kernel.dispatcher ~name:"A.T" ~owner:"A"
      (fun () -> ()) in
  let iters = 200_000 in
  let host_us_per_raise () =
    let t0 = Report.wall_s () in
    for _ = 1 to iters do Dispatcher.raise_event e () done;
    (Report.wall_s () -. t0) *. 1e6 /. float_of_int iters in
  ignore (host_us_per_raise ());                       (* warm up *)
  Spin.Trace.disable tr;
  let clock = k.Kernel.machine.Machine.clock in
  let v0 = Clock.now clock in
  let off = host_us_per_raise () in
  let v_off = Clock.now clock - v0 in
  Spin.Trace.enable tr;
  let v1 = Clock.now clock in
  let on_ = host_us_per_raise () in
  let v_on = Clock.now clock - v1 in
  Spin.Trace.disable tr;
  Printf.printf "  %d raises of a fast-path event:\n" iters;
  Printf.printf "    tracer disabled: %8.4f host-us/raise\n" off;
  Printf.printf "    tracer enabled:  %8.4f host-us/raise  (%.1fx)\n"
    on_ (if off > 0. then on_ /. off else 0.);
  Printf.printf "    virtual cycles charged: disabled=%d enabled=%d %s\n"
    v_off v_on
    (if v_off = v_on then "(equal: tracing is virtual-time neutral)"
     else "(MISMATCH: tracing perturbed the simulation!)");
  Report.metric ~name:"fast path, tracer off" ~unit_:"host-us" off;
  Report.metric ~name:"fast path, tracer on" ~unit_:"host-us" on_

(* ------------------------------------------------------------------ *)
(* Ablation 6: schedule-fuzzing hooks when fuzzing is off             *)
(* ------------------------------------------------------------------ *)

(* The fuzzer's instrumentation (selector, probes, the preemption
   clock hook) must be free when not fuzzing: a kernel that had a
   fuzzer attached and detached runs the same workload in exactly the
   same virtual time as one that never saw a fuzzer. *)
let fuzz_overhead () =
  Report.header "Ablation: schedule-fuzzing hooks, fuzzing disabled";
  let workload ~fuzzed =
    let k = Kernel.boot ~name:"abl8" () in
    let fz =
      if fuzzed then Some (Kernel.attach_fuzz ~seed:1 k) else None in
    (match fz with Some fz -> Spin_sched.Sched_fuzz.detach fz | None -> ());
    let clock = k.Kernel.machine.Machine.clock in
    let v0 = Clock.now clock in
    for i = 1 to 4 do
      ignore (Kernel.spawn k ~name:(Printf.sprintf "w%d" i) (fun () ->
        for _ = 1 to 25 do
          Spin_sched.Sched.yield k.Kernel.sched;
          Spin_sched.Sched.sleep_us k.Kernel.sched 2.0
        done))
    done;
    Kernel.run k;
    Clock.now clock - v0 in
  let plain = workload ~fuzzed:false in
  let detached = workload ~fuzzed:true in
  Printf.printf "  virtual cycles, 4 strands x 25 yield+sleep rounds:\n";
  Printf.printf "    never attached:      %10d\n" plain;
  Printf.printf "    attached, detached:  %10d  %s\n" detached
    (if plain = detached then "(equal: disabled fuzzing is free)"
     else "(MISMATCH: fuzz hooks perturbed the schedule!)");
  Report.metric ~name:"fuzz off, never attached" ~unit_:"cycles"
    (float_of_int plain);
  Report.metric ~name:"fuzz off, detached" ~unit_:"cycles"
    (float_of_int detached)

let run () =
  colocation ();
  fast_path ();
  guards ();
  indexed_dispatch ();
  little_language ();
  gc_pause ();
  trace_overhead ();
  fuzz_overhead ()
