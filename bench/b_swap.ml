(* Live extension update under load: hot-swap the HTTP content
   generator mid-ramp and the video codec mid-stream (Spin.Swap).

   The windows are short enough that nothing is dropped: requests that
   arrive while the gates are closed park at the event's edge and
   complete against the replacement handlers; the generator's request
   counter survives each generation through checkpoint/restore; and
   every capability the retired instance minted dies by epoch — stale
   use faults as [Capability.Revoked] instead of dangling.

   Reported: zero-drop accounting for both workloads and the
   ["swap.pause"] latency histogram (what a request arriving mid-swap
   waits), whose p50/p99 the perf gate watches. *)

open Spin_net
module Swap = Spin.Swap
module Dispatcher = Spin_core.Dispatcher
module Object_file = Spin_core.Object_file
module Kdomain = Spin_core.Kdomain
module Capability = Spin_core.Capability
module Univ = Spin_core.Univ
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Machine = Spin_machine.Machine
module Nic = Spin_machine.Nic
module Trace = Spin_machine.Trace
module Sched = Spin_sched.Sched

(* ------------------------------------------------------------------ *)
(* One generation of the "WebGen" content generator                    *)
(* ------------------------------------------------------------------ *)

(* The externalized state a swap must carry across generations: how
   many requests this extension has served over its whole life. *)
let state_tag : int Univ.tag = Univ.tag ~name:"WebGen.State" ()

let webgen ~version http =
  let served = ref 0 in
  let b =
    Object_file.Builder.create ~name:"WebGen"
      ~safety:Object_file.Compiler_signed () in
  Object_file.Builder.set_version b version;
  Object_file.Builder.set_init b (fun () ->
    match Http.content_event http with
    | None -> ()
    | Some ev ->
      ignore
        (Dispatcher.install_exn ev ~installer:"WebGen" (fun path ->
           if String.equal path "live" then begin
             incr served;
             Some
               (Bytes.of_string
                  (Printf.sprintf "generation %d, request %d\n" version
                     !served))
           end
           else None)));
  Object_file.Builder.export b Swap.checkpoint_sym
    (Univ.pack Swap.checkpoint_tag (fun () -> Univ.pack state_tag !served));
  Object_file.Builder.export b Swap.restore_sym
    (Univ.pack Swap.restore_tag (fun u ->
       match Univ.unpack state_tag u with
       | Some n -> served := n
       | None -> ()));
  (Object_file.Builder.build b, served)

(* ------------------------------------------------------------------ *)
(* HTTP: upgrade the generator while the ramp is in full flight        *)
(* ------------------------------------------------------------------ *)

let http_clients = 6
let requests_per_client = 25
let http_swaps = 8

let http_half () =
  let clock, client, server, http = B_extra.web_fixture_full () in
  let tr = Trace.of_clock clock in
  Trace.enable tr;
  let swap = Swap.create server.Host.sched server.Host.dispatcher in
  (* Generation 1 comes up before the load does. *)
  let obj1, served1 = webgen ~version:1 http in
  let dom = ref (Kdomain.create_exn obj1) in
  Kdomain.initialize !dom;
  let live_counter = ref served1 in
  (* A client-held reference into generation 1 — the swap must revoke
     it, not leave it dangling into retired code. *)
  let stale_cap = Capability.mint ~owner:"WebGen" "generation 1 session" in
  for c = 1 to http_clients do
    ignore
      (Sched.spawn client.Host.sched ~name:(Printf.sprintf "load-%d" c)
         (fun () ->
           for _ = 1 to requests_per_client do
             B_extra.http_get ~path:"live" clock client
           done))
  done;
  let outcomes = ref [] and failures = ref [] in
  ignore
    (Sched.spawn server.Host.sched ~name:"swapper" (fun () ->
       for g = 2 to http_swaps + 1 do
         Sched.sleep_us server.Host.sched 400.;
         let obj, served = webgen ~version:g http in
         match
           Swap.hot_swap swap ~old_domain:!dom ~replacement:obj
             ~prepare:Kdomain.create
             ~activate:(fun d ->
               dom := d;
               live_counter := served)
             ()
         with
         | Ok o -> outcomes := o :: !outcomes
         | Error e -> failures := Swap.error_to_string e :: !failures
       done));
  Host.run_all [ client; server ];
  let st = Http.stats http in
  let expected = http_clients * requests_per_client in
  let dropped = expected - st.Http.ok in
  let revoked =
    match Capability.deref stale_cap with
    | exception Capability.Revoked _ -> true
    | _ -> false in
  let continuity = !(!live_counter) = st.Http.dynamic in
  (tr, swap, !outcomes, !failures, st, expected, dropped, revoked, continuity)

(* ------------------------------------------------------------------ *)
(* Video: upgrade the codec fan-out mid-stream                         *)
(* ------------------------------------------------------------------ *)

let addr_vserver = Ip.addr_of_quad 10 0 0 1
let addr_vsink = Ip.addr_of_quad 10 0 0 2
let frame_bytes = 12_500
let fps = 30

(* One generation of the "VideoCodec" fan-out extension. It keeps no
   state of its own — a legal Checkpointable citizen with nothing to
   checkpoint — and a newer generation patches headers cheaper. *)
let codec ~version video =
  let b =
    Object_file.Builder.create ~name:"VideoCodec"
      ~safety:Object_file.Compiler_signed () in
  Object_file.Builder.set_version b version;
  Object_file.Builder.set_init b (fun () ->
    let patch_cost = if version >= 2 then 38 else 45 in
    ignore (Video.install_mcast ~patch_cost video ~installer:"VideoCodec"));
  Object_file.Builder.build b

let video_half () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create sim ~name:"vserver" ~addr:addr_vserver in
  let sink = Host.create sim ~name:"vsink" ~addr:addr_vsink in
  let nic, _ = Host.wire server sink ~kind:Nic.T3 in
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc =
    Spin_fs.Block_cache.create ~phys:server.Host.phys server.Host.machine
      server.Host.sched disk in
  let tr = Trace.of_clock clock in
  Trace.enable tr;
  let video = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    let v = Video.create_server ~mcast:false server ~fs ~netif:nic ~port:5004 in
    Video.load_frames v ~count:15 ~frame_bytes;
    video := Some v));
  Host.run_all [ server; sink ];
  let video = Option.get !video in
  let viewer = Video.create_client sink ~port:5004 in
  for _ = 1 to 4 do Video.add_client video addr_vsink done;
  let swap = Swap.create server.Host.sched server.Host.dispatcher in
  let dom = ref (Kdomain.create_exn (codec ~version:1 video)) in
  Kdomain.initialize !dom;
  ignore (Sched.spawn server.Host.sched ~name:"streamer" (fun () ->
    Video.stream video ~fps ~duration_s:1.0));
  let outcomes = ref [] and failures = ref [] in
  ignore (Sched.spawn server.Host.sched ~name:"swapper" (fun () ->
    List.iter
      (fun (delay_us, version) ->
        Sched.sleep_us server.Host.sched delay_us;
        match
          Swap.hot_swap swap ~old_domain:!dom
            ~replacement:(codec ~version video) ~prepare:Kdomain.create
            ~activate:(fun d -> dom := d) ()
        with
        | Ok o -> outcomes := o :: !outcomes
        | Error e -> failures := Swap.error_to_string e :: !failures)
      [ (450_000., 2); (250_000., 3) ]));
  Host.run_all [ server; sink ];
  let sent = Video.packets_sent video in
  let displayed = Video.frames_displayed viewer in
  (tr, !outcomes, !failures, Video.frames_streamed video, sent, displayed)

(* ------------------------------------------------------------------ *)

let run () =
  Report.header "Live update: hot-swap under load (zero drops, bounded pause)";

  let tr, swap, outcomes, failures, st, expected, dropped, revoked, continuity
      = http_half () in
  Printf.printf "  HTTP: %d requests against %d generator swaps\n"
    st.Http.requests (List.length outcomes);
  List.iter (fun f -> Printf.printf "  swap FAILED: %s\n" f) failures;
  Printf.printf
    "    ok %d  dynamic %d  not-found %d  fallbacks %d  dropped %d/%d\n"
    st.Http.ok st.Http.dynamic st.Http.not_found st.Http.fallbacks dropped
    expected;
  let held =
    List.fold_left (fun a o -> a + o.Swap.sw_held_raises) 0 outcomes in
  let swept =
    List.fold_left (fun a o -> a + o.Swap.sw_handlers_swept) 0 outcomes in
  let ckpts =
    List.length (List.filter (fun o -> o.Swap.sw_checkpointed) outcomes) in
  Printf.printf
    "    held raises %d, handlers swept %d, checkpoints restored %d\n"
    held swept ckpts;
  Printf.printf "    request-counter continuity across generations: %b\n"
    continuity;
  Printf.printf "    stale generation-1 capability revoked: %b\n" revoked;
  let stats = Swap.stats swap in
  Report.metric ~unit_:"count" ~name:"http swaps"
    (float_of_int stats.Swap.swaps);
  Report.metric ~unit_:"count" ~name:"http requests dropped"
    (float_of_int dropped);
  Report.metric ~unit_:"count" ~name:"held raises" (float_of_int held);
  (match Trace.summary tr ~key:"swap.pause" with
   | None -> print_endline "    no swap.pause samples?"
   | Some s ->
     Printf.printf
       "    swap pause (us): p50 %.1f  p90 %.1f  p99 %.1f  max %.1f (n=%d)\n"
       s.Trace.p50_us s.Trace.p90_us s.Trace.p99_us s.Trace.max_us s.Trace.count;
     Report.metric ~unit_:"us" ~name:"swap pause p50" s.Trace.p50_us;
     Report.metric ~unit_:"us" ~name:"swap pause p99" s.Trace.p99_us);

  let vtr, voutcomes, vfailures, frames, sent, displayed = video_half () in
  List.iter (fun f -> Printf.printf "  video swap FAILED: %s\n" f) vfailures;
  Printf.printf
    "  video: %d frames streamed across %d codec swaps; %d packets sent, %d displayed, %d lost\n"
    frames (List.length voutcomes) sent displayed (sent - displayed);
  List.iter
    (fun o ->
      Printf.printf "    codec v%d -> v%d: pause %.1f us, held %d\n"
        o.Swap.sw_from_version o.Swap.sw_to_version o.Swap.sw_pause_us
        o.Swap.sw_held_raises)
    (List.rev voutcomes);
  (match Trace.summary vtr ~key:"swap.pause" with
   | None -> ()
   | Some s ->
     Report.metric ~unit_:"us" ~name:"video swap pause mean" s.Trace.mean_us);
  Report.metric ~unit_:"count" ~name:"video packets lost"
    (float_of_int (sent - displayed));
  Report.note
    "  Requests and frames arriving inside a swap window are held at the\n\
    \  gate and complete against the replacement; stale capabilities fault\n\
    \  as Revoked.\n"
