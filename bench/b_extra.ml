(* Section 5.5 measurements: dispatcher scalability with guards, the
   impact of automatic storage management, and the web-server
   comparison of section 5.4. *)

open Spin_net
module Kernel = Spin.Kernel
module Dispatcher = Spin_core.Dispatcher
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Nic = Spin_machine.Nic
module Sched = Spin_sched.Sched
module Machine = Spin_machine.Machine
module Kheap = Spin_kgc.Kheap
module Bl_path = Spin_baseline.Bl_path
module Os_costs = Spin_baseline.Os_costs

let addr_a = Ip.addr_of_quad 10 0 0 1
let addr_b = Ip.addr_of_quad 10 0 0 2

(* ------------------------------------------------------------------ *)
(* Dispatcher scalability: Ethernet RTT with extra guards             *)
(* ------------------------------------------------------------------ *)

let udp_rtt_with_watchers ~count ~pass =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let a = Host.create sim ~name:"a" ~addr:addr_a in
  let b = Host.create sim ~name:"b" ~addr:addr_b in
  ignore (Host.wire a b ~kind:Nic.Lance);
  (* Watchers registering interest in the arrival of some UDP packet
     on the server. *)
  for _ = 1 to count do
    ignore
      (Dispatcher.install_exn (Udp.packet_arrived b.Host.udp)
         ~installer:"watcher" ~guard:(fun _ -> pass)
         (fun _ -> ()))
  done;
  ignore (Udp.listen b.Host.udp ~port:7 ~installer:"echo" (fun d ->
    ignore (Udp.send_pkt b.Host.udp ~src_port:7 ~dst:d.Udp.src
              ~port:d.Udp.src_port d.Udp.payload)));
  let rtts = ref [] and t0 = ref 0. and pending = ref 0 in
  ignore (Udp.listen a.Host.udp ~port:7070 ~installer:"probe" (fun _ ->
    rtts := (Clock.now_us clock -. !t0) :: !rtts;
    decr pending));
  ignore (Sched.spawn a.Host.sched ~name:"probe" (fun () ->
    for _ = 1 to 4 do
      t0 := Clock.now_us clock;
      incr pending;
      ignore (Udp.send a.Host.udp ~src_port:7070 ~dst:addr_b ~port:7
                (Bytes.create 16));
      while !pending > 0 do Sched.sleep_us a.Host.sched 50. done
    done));
  Host.run_all [ a; b ];
  match !rtts with
  | [] -> nan
  | _ :: warm -> Report.mean (if warm = [] then !rtts else warm)

let dispatcher_scaling () =
  Report.header "Section 5.5: dispatcher scalability (Ethernet RTT, us)";
  Printf.printf "%-42s %10s %10s\n" "configuration" "paper" "measured";
  let row name paper v = Printf.printf "%-42s %10.0f %10.1f\n" name paper v in
  row "no extra handlers" 565. (udp_rtt_with_watchers ~count:0 ~pass:false);
  row "50 handlers, all guards false" 585.
    (udp_rtt_with_watchers ~count:50 ~pass:false);
  row "50 handlers, all guards true" 637.
    (udp_rtt_with_watchers ~count:50 ~pass:true);
  Report.note
    "  Dispatch grows linearly with installed guards and handlers.\n"

(* ------------------------------------------------------------------ *)
(* Impact of automatic storage management                              *)
(* ------------------------------------------------------------------ *)

let gc_impact () =
  Report.header "Section 5.5: impact of automatic storage management";
  (* Fast paths avoid allocation, so disabling the collector changes
     nothing — re-measure the Table 2 fast paths under both modes. *)
  let fast_paths gc_on =
    let k = Kernel.boot ~name:"gc" () in
    Kheap.set_auto k.Kernel.heap gc_on;
    Kernel.register_syscall k ~number:0 (fun _ -> 0);
    let e = Dispatcher.declare k.Kernel.dispatcher ~name:"G.Null" ~owner:"G"
        (fun () -> ()) in
    let call = Kernel.stamp_us k (fun () -> Dispatcher.raise_event e ()) in
    let sys = Kernel.stamp_us k (fun () ->
      ignore (Kernel.syscall k ~number:0 ~args:[||])) in
    (call, sys) in
  let (c1, s1) = fast_paths true and (c0, s0) = fast_paths false in
  Printf.printf "%-42s %10s %10s\n" "fast path" "GC on" "GC off";
  Printf.printf "%-42s %8.2fus %8.2fus\n" "protected in-kernel call" c1 c0;
  Printf.printf "%-42s %8.2fus %8.2fus\n" "system call" s1 s0;
  Printf.printf "  identical: %b (paper: measurements do not change)\n"
    (c1 = c0 && s1 = s0);
  (* An allocation-heavy rogue extension: the collector reclaims what
     it leaks, for a bounded pause. *)
  let k = Kernel.boot ~name:"gc2" () in
  let heap = k.Kernel.heap in
  (* A live working set survives each collection (and is copied). *)
  let live = Kheap.alloc heap ~owner:"tcp" ~words:512 in
  let _root = Kheap.add_root heap ~name:"tcp-state" (Kheap.Ptr live) in
  for _ = 1 to 3000 do
    ignore (Kheap.alloc heap ~owner:"rogue-ext" ~words:16)
  done;
  let st = Kheap.stats heap in
  Printf.printf
    "  rogue extension: %d collections reclaimed %d words; total pause %.0f us\n"
    st.Kheap.collections st.Kheap.words_freed
    (Cost.cycles_to_us Cost.alpha_133 st.Kheap.pause_cycles);
  Printf.printf "  heap after storm: %d words live of %d allocated\n"
    (Kheap.live_words heap) (Kheap.heap_words heap)

(* ------------------------------------------------------------------ *)
(* Web server: SPIN in-kernel vs user-level on OSF/1                  *)
(* ------------------------------------------------------------------ *)

let web_fixture ?cpus ?(kind = Nic.Lance) ?mbps () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create ?cpus sim ~name:"www" ~addr:addr_b in
  let client = Host.create ?cpus sim ~name:"client" ~addr:addr_a in
  ignore (Host.wire ?mbps client server ~kind);
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc = Spin_fs.Block_cache.create ~phys:server.Host.phys server.Host.machine server.Host.sched disk in
  let cache = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    Spin_fs.Simple_fs.create fs ~name:"index.html";
    Spin_fs.Simple_fs.write fs ~name:"index.html"
      (Bytes.of_string (String.make 2048 'x'));
    let c = Spin_fs.File_cache.create ~phys:server.Host.phys fs in
    ignore (Http.create server.Host.machine server.Host.sched server.Host.tcp c);
    cache := Some c));
  Host.run_all [ client; server ];
  (clock, client, server)

(* The same server with its dispatcher passed to [Http.create], so
   [HTTP.GenContent] is declared and loadable extensions can serve
   dynamic paths — the fixture the hot-swap experiments replace
   content generators on. Also returns the server handle. *)
let web_fixture_full ?cpus () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create ?cpus sim ~name:"www" ~addr:addr_b in
  let client = Host.create ?cpus sim ~name:"client" ~addr:addr_a in
  ignore (Host.wire client server ~kind:Nic.Lance);
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc = Spin_fs.Block_cache.create ~phys:server.Host.phys server.Host.machine server.Host.sched disk in
  let http = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    Spin_fs.Simple_fs.create fs ~name:"index.html";
    Spin_fs.Simple_fs.write fs ~name:"index.html"
      (Bytes.of_string (String.make 2048 'x'));
    let c = Spin_fs.File_cache.create ~phys:server.Host.phys fs in
    http := Some (Http.create ~dispatcher:server.Host.dispatcher
                    server.Host.machine server.Host.sched server.Host.tcp c)));
  Host.run_all [ client; server ];
  (clock, client, server, Option.get !http)

let http_get ?(user_level = false) ?(path = "index.html") clock client =
  let osf = Os_costs.osf1 in
  match Tcp.connect client.Host.tcp ~dst:addr_b ~dst_port:80 with
  | None -> ()
  | Some conn ->
    if user_level then begin
      (* The user-level server's per-request work: accept returns to
         user space, the request is read, the file is fetched through
         the (double-buffered) file system, the response is written —
         each step a crossing with copies. *)
      Bl_path.null_syscall clock osf;                      (* accept *)
      (* A 1995 user-level httpd forks a worker per request: the
         copy-on-write address-space setup over the server image
         dominates (the structural reason the paper's user-level
         server needs 8 ms where SPIN needs 5). *)
      let server_image_pages = 120 in
      Clock.charge clock
        (server_image_pages
         * ((2 * (Clock.cost clock).Spin_machine.Cost.mmu_map_op)
            + osf.Os_costs.vm_layer_per_page));
      Clock.charge clock (2 * (Clock.cost clock).Spin_machine.Cost.addr_space_switch);
      Bl_path.user_recv_overhead clock osf ~bytes:64;      (* read request *)
      Bl_path.null_syscall clock osf;                      (* open *)
      Bl_path.null_syscall clock osf;                      (* stat *)
      Clock.charge clock (2 * Bl_path.copy_cost clock ~bytes:2048);
      (* FS cache -> user buffer -> socket: double buffering *)
      Bl_path.user_send_overhead clock osf ~bytes:2048;    (* write reply *)
      Bl_path.null_syscall clock osf;                      (* close *)
      Bl_path.null_syscall clock osf                       (* wait/exit *)
    end;
    Tcp.send client.Host.tcp conn
      (Bytes.of_string (Printf.sprintf "GET /%s HTTP/1.0\r\n\r\n" path));
    let rec drain () =
      let data = Tcp.read client.Host.tcp conn in
      if Bytes.length data > 0 then drain () in
    drain ()

let web_latency ~user_level =
  let clock, client, server = web_fixture () in
  let out = ref 0. in
  ignore (Sched.spawn client.Host.sched ~name:"client" (fun () ->
    (* Warm the object cache. *)
    http_get ~user_level:false clock client;
    let samples = ref [] in
    for _ = 1 to 5 do
      let t0 = Clock.now_us clock in
      http_get ~user_level clock client;
      samples := (Clock.now_us clock -. t0) :: !samples
    done;
    out := Report.mean !samples));
  Host.run_all [ client; server ];
  !out /. 1000.

let web () =
  Report.header "Section 5.4: web server, client-side latency (ms, cached file)";
  Printf.printf "%-42s %10s %10s\n" "server" "paper" "measured";
  Printf.printf "%-42s %10.0f %10.2f\n" "SPIN in-kernel HTTP + hybrid cache" 5.
    (web_latency ~user_level:false);
  Printf.printf "%-42s %10.0f %10.2f\n" "user-level server on the caching FS" 8.
    (web_latency ~user_level:true)
