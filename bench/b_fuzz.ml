(* Schedule-fuzzing soak: the HTTP fixture of the load experiment plus
   sleepers and kthread synchronization, run under Sched_fuzz's random
   scheduler — one freshly built fixture per seed, so a seed names one
   schedule exactly.

     dune exec bench/main.exe -- fuzz --seeds 200
     dune exec bench/main.exe -- fuzz --replay 17

   A campaign runs seeds 1..N and exits nonzero on the first seed with
   invariant violations, after writing fuzz-artifacts/failing-seed.txt
   and a Chrome trace of the deterministic replay. *)

module Sched = Spin_sched.Sched
module Strand = Spin_sched.Strand
module Kthread = Spin_sched.Kthread
module Sched_fuzz = Spin_sched.Sched_fuzz
module Clock = Spin_machine.Clock
module Machine = Spin_machine.Machine
module Trace = Spin_machine.Trace
open Spin_net

(* Set by the main.exe argument parser. *)
let seeds = ref 50
let replay = ref None

let artifact_dir = "fuzz-artifacts"

(* The per-host input strands park forever waiting for packets; being
   blocked at quiescence is their job, not a lost wakeup. *)
let daemon s =
  let name = s.Strand.name in
  let suffix = "-input" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix

let attach_host ~seed host =
  Sched_fuzz.attach
    ~cpu:host.Host.machine.Machine.cpu
    ~dispatcher:host.Host.dispatcher
    ~seed host.Host.sched

(* One seed = one schedule of this workload: 4 HTTP client loops
   against the in-kernel server, timed sleepers on the server, and a
   mutex/condvar producer-consumer pair on the client. *)
let run_seed ~seed ~traced =
  let clock, client, server = B_extra.web_fixture () in
  let tr = Trace.of_clock clock in
  if traced then Trace.enable tr;
  (* Distinct streams per host; both derived from the seed alone. *)
  let fz_client = attach_host ~seed client in
  let fz_server = attach_host ~seed:(seed lxor 0x5F3759DF) server in
  for c = 1 to 4 do
    ignore (Sched.spawn client.Host.sched
              ~name:(Printf.sprintf "fuzz-client-%d" c) (fun () ->
      for _ = 1 to 5 do B_extra.http_get clock client done))
  done;
  for i = 1 to 3 do
    ignore (Sched.spawn server.Host.sched
              ~name:(Printf.sprintf "fuzz-sleeper-%d" i) (fun () ->
      for _ = 1 to 5 do
        Sched.sleep_us server.Host.sched (7.5 *. float_of_int i);
        Sched.yield server.Host.sched
      done))
  done;
  let mutex = Kthread.Mutex.create () in
  let cond = Kthread.Condition.create () in
  let queue = Queue.create () in
  let consumed = ref 0 in
  let items = 20 in
  ignore (Sched.spawn client.Host.sched ~name:"fuzz-producer" (fun () ->
    for i = 1 to items do
      Kthread.Mutex.with_lock client.Host.sched mutex (fun () ->
        Queue.add i queue;
        Kthread.Condition.signal client.Host.sched cond);
      Sched.yield client.Host.sched
    done));
  for c = 1 to 2 do
    ignore (Sched.spawn client.Host.sched
              ~name:(Printf.sprintf "fuzz-consumer-%d" c) (fun () ->
      let continue = ref true in
      while !continue do
        Kthread.Mutex.with_lock client.Host.sched mutex (fun () ->
          while Queue.is_empty queue && !consumed < items do
            Kthread.Condition.wait client.Host.sched mutex cond
          done;
          if Queue.is_empty queue then continue := false
          else begin
            ignore (Queue.pop queue);
            incr consumed;
            if !consumed >= items then
              Kthread.Condition.broadcast client.Host.sched cond
          end)
      done))
  done;
  Host.run_all [ client; server ];
  Sched_fuzz.check_quiescence ~exempt:daemon fz_client;
  Sched_fuzz.check_quiescence ~exempt:daemon fz_server;
  if !consumed <> items then
    (* The workload itself lost work — count it with the violations. *)
    Printf.printf "  seed %d: consumer finished %d/%d items\n" seed !consumed
      items;
  let violations =
    Sched_fuzz.violations fz_client @ Sched_fuzz.violations fz_server in
  let stats = [ Sched_fuzz.stats fz_client; Sched_fuzz.stats fz_server ] in
  Sched_fuzz.detach fz_client;
  Sched_fuzz.detach fz_server;
  (violations, stats, tr)

let write_artifacts ~seed violations =
  (try Sys.mkdir artifact_dir 0o755 with Sys_error _ -> ());
  let seed_file = Filename.concat artifact_dir "failing-seed.txt" in
  let oc = open_out seed_file in
  Printf.fprintf oc "seed %d\nreplay: dune exec bench/main.exe -- fuzz --replay %d\n\n"
    seed seed;
  List.iter (fun v -> Printf.fprintf oc "%s\n" v) violations;
  close_out oc;
  (* The schedule is a pure function of the seed: re-run it traced and
     keep the Chrome timeline of the failing interleaving. *)
  let _, _, tr = run_seed ~seed ~traced:true in
  let trace_file =
    Filename.concat artifact_dir (Printf.sprintf "seed-%d.trace.json" seed) in
  let oc = open_out trace_file in
  output_string oc (Trace.to_chrome_json tr);
  close_out oc;
  Printf.printf "  artifacts: %s, %s\n" seed_file trace_file

let report_seed ~seed (violations, stats, _) =
  let total =
    List.fold_left (fun a s -> a + s.Sched_fuzz.violations) 0 stats in
  if total > 0 then begin
    Printf.printf "  seed %d: %d violation(s)\n" seed total;
    List.iter (fun v -> Printf.printf "    %s\n" v) violations
  end;
  total

let run () =
  Report.header "Schedule fuzzing (seeded, deterministic replay)";
  match !replay with
  | Some seed ->
    Printf.printf "  replaying seed %d\n" seed;
    let result = run_seed ~seed ~traced:false in
    let bad = report_seed ~seed result in
    if bad = 0 then Printf.printf "  seed %d: clean\n" seed
    else begin
      write_artifacts ~seed (let v, _, _ = result in v);
      Report.write_json ();
      exit 1
    end
  | None ->
    let n = !seeds in
    let decisions = ref 0 and injected = ref 0 in
    let failed = ref None in
    let s = ref 1 in
    while !failed = None && !s <= n do
      let seed = !s in
      let (violations, stats, _) as result = run_seed ~seed ~traced:false in
      List.iter
        (fun st ->
          decisions := !decisions + st.Sched_fuzz.decisions;
          injected := !injected + st.Sched_fuzz.injected_preempts)
        stats;
      if report_seed ~seed result > 0 then failed := Some (seed, violations);
      incr s
    done;
    let ran = !s - 1 in
    Printf.printf
      "  %d seed(s): %d scheduling decisions, %d injected preemptions\n"
      ran !decisions !injected;
    Report.metric ~name:"seeds run" ~unit_:"count" (float_of_int ran);
    Report.metric ~name:"scheduling decisions" ~unit_:"count"
      (float_of_int !decisions);
    (match !failed with
     | None -> Printf.printf "  no invariant violations\n"
     | Some (seed, violations) ->
       write_artifacts ~seed violations;
       Report.write_json ();
       exit 1)
