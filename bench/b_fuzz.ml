(* Schedule-fuzzing soak: the HTTP fixture of the load experiment plus
   sleepers and kthread synchronization, run under Sched_fuzz's random
   scheduler — one freshly built fixture per seed, so a seed names one
   schedule exactly.

     dune exec bench/main.exe -- fuzz --seeds 200
     dune exec bench/main.exe -- fuzz --replay 17

   A campaign runs seeds 1..N and exits nonzero on the first seed with
   invariant violations, after writing fuzz-artifacts/failing-seed.txt
   and a Chrome trace of the deterministic replay. *)

module Sched = Spin_sched.Sched
module Strand = Spin_sched.Strand
module Kthread = Spin_sched.Kthread
module Sched_fuzz = Spin_sched.Sched_fuzz
module Clock = Spin_machine.Clock
module Machine = Spin_machine.Machine
module Trace = Spin_machine.Trace
open Spin_net

(* Set by the main.exe argument parser. *)
let seeds = ref 50
let replay = ref None
let cpus : int option ref = ref None

let artifact_dir = "fuzz-artifacts"

(* The per-host input strands park forever waiting for packets; being
   blocked at quiescence is their job, not a lost wakeup. *)
let daemon s =
  let name = s.Strand.name in
  let suffix = "-input" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix

let attach_host ~seed host =
  Sched_fuzz.attach
    ~cpus:(Array.to_list host.Host.machine.Machine.cpus)
    ~dispatcher:host.Host.dispatcher
    ~seed host.Host.sched

(* One seed = one schedule of this workload: 4 HTTP client loops
   against the in-kernel server (half of them hitting the dynamic
   /live generator), timed sleepers on the server, a mutex/condvar
   producer-consumer pair on the client — and a swapper strand that
   hot-swaps the content generator twice, mid-request-storm, so the
   fuzzer can preempt inside the swap window itself. *)
let run_seed ~seed ~traced =
  let clock, client, server, http = B_extra.web_fixture_full ?cpus:!cpus () in
  let tr = Trace.of_clock clock in
  if traced then Trace.enable tr;
  (* Distinct streams per host; both derived from the seed alone. *)
  let fz_client = attach_host ~seed client in
  let fz_server = attach_host ~seed:(seed lxor 0x5F3759DF) server in
  let swap = Spin.Swap.create server.Host.sched server.Host.dispatcher in
  let obj1, _ = B_swap.webgen ~version:1 http in
  let dom = ref (Spin_core.Kdomain.create_exn obj1) in
  Spin_core.Kdomain.initialize !dom;
  let stale_cap = Spin_core.Capability.mint ~owner:"WebGen" seed in
  let swap_errors = ref [] in
  ignore (Sched.spawn server.Host.sched ~name:"fuzz-swapper" (fun () ->
    for g = 2 to 3 do
      Sched.sleep_us server.Host.sched (float_of_int (150 * g));
      let obj, _ = B_swap.webgen ~version:g http in
      match
        Spin.Swap.hot_swap swap ~old_domain:!dom ~replacement:obj
          ~prepare:Spin_core.Kdomain.create
          ~activate:(fun d -> dom := d) ()
      with
      | Ok _ -> ()
      | Error e ->
        swap_errors :=
          Printf.sprintf "swap to generation %d failed: %s" g
            (Spin.Swap.error_to_string e)
          :: !swap_errors
    done));
  for c = 1 to 4 do
    let path = if c mod 2 = 0 then "live" else "index.html" in
    ignore (Sched.spawn client.Host.sched
              ~name:(Printf.sprintf "fuzz-client-%d" c) (fun () ->
      for _ = 1 to 5 do B_extra.http_get ~path clock client done))
  done;
  for i = 1 to 3 do
    ignore (Sched.spawn server.Host.sched
              ~name:(Printf.sprintf "fuzz-sleeper-%d" i) (fun () ->
      for _ = 1 to 5 do
        Sched.sleep_us server.Host.sched (7.5 *. float_of_int i);
        Sched.yield server.Host.sched
      done))
  done;
  let mutex = Kthread.Mutex.create () in
  let cond = Kthread.Condition.create () in
  let queue = Queue.create () in
  let consumed = ref 0 in
  let items = 20 in
  ignore (Sched.spawn client.Host.sched ~name:"fuzz-producer" (fun () ->
    for i = 1 to items do
      Kthread.Mutex.with_lock client.Host.sched mutex (fun () ->
        Queue.add i queue;
        Kthread.Condition.signal client.Host.sched cond);
      Sched.yield client.Host.sched
    done));
  for c = 1 to 2 do
    ignore (Sched.spawn client.Host.sched
              ~name:(Printf.sprintf "fuzz-consumer-%d" c) (fun () ->
      let continue = ref true in
      while !continue do
        Kthread.Mutex.with_lock client.Host.sched mutex (fun () ->
          while Queue.is_empty queue && !consumed < items do
            Kthread.Condition.wait client.Host.sched mutex cond
          done;
          if Queue.is_empty queue then continue := false
          else begin
            ignore (Queue.pop queue);
            incr consumed;
            if !consumed >= items then
              Kthread.Condition.broadcast client.Host.sched cond
          end)
      done))
  done;
  Host.run_all [ client; server ];
  Sched_fuzz.check_quiescence ~exempt:daemon fz_client;
  Sched_fuzz.check_quiescence ~exempt:daemon fz_server;
  if !consumed <> items then
    (* The workload itself lost work — count it with the violations. *)
    Printf.printf "  seed %d: consumer finished %d/%d items\n" seed !consumed
      items;
  (* Swap-specific invariants, checked at quiescence: both swaps
     committed, no request was dropped or degraded while the gates
     were closed, the generation-1 capability died by epoch, and no
     dispatch is still marked in flight. *)
  let swap_violations = ref !swap_errors in
  let bad msg = swap_violations := msg :: !swap_violations in
  let st = Http.stats http in
  if st.Http.ok <> st.Http.requests then
    bad (Printf.sprintf "dropped requests: %d ok of %d"
           st.Http.ok st.Http.requests);
  if st.Http.fallbacks > 0 then
    bad (Printf.sprintf "%d degraded responses during swap" st.Http.fallbacks);
  (match Spin_core.Capability.deref stale_cap with
   | exception Spin_core.Capability.Revoked _ -> ()
   | _ -> bad "stale generation-1 capability survived the swaps");
  Spin_core.Dispatcher.audit client.Host.dispatcher bad;
  Spin_core.Dispatcher.audit server.Host.dispatcher bad;
  (* The protocol stack's filters (ethertype, protocol and port demux)
     install as verified bytecode, so every seed soaks the trusted-fast
     path: a campaign where it never fired, or where the verifier
     turned an install away, means the stack silently fell back to
     guarded closures. *)
  if Spin_core.Dispatcher.trusted_total server.Host.dispatcher = 0 then
    bad "no trusted-fast dispatches on the server: bytecode path inactive";
  let rejected =
    Spin_core.Dispatcher.verifier_rejections client.Host.dispatcher
    + Spin_core.Dispatcher.verifier_rejections server.Host.dispatcher in
  if rejected > 0 then
    bad (Printf.sprintf "%d bytecode install(s) rejected by the verifier"
           rejected);
  let violations =
    List.rev !swap_violations
    @ Sched_fuzz.violations fz_client @ Sched_fuzz.violations fz_server in
  let stats = [ Sched_fuzz.stats fz_client; Sched_fuzz.stats fz_server ] in
  Sched_fuzz.detach fz_client;
  Sched_fuzz.detach fz_server;
  (violations, stats, tr)

let write_artifacts ~seed violations =
  (try Sys.mkdir artifact_dir 0o755 with Sys_error _ -> ());
  let seed_file = Filename.concat artifact_dir "failing-seed.txt" in
  let oc = open_out seed_file in
  Printf.fprintf oc "seed %d\nreplay: dune exec bench/main.exe -- fuzz --replay %d\n\n"
    seed seed;
  List.iter (fun v -> Printf.fprintf oc "%s\n" v) violations;
  close_out oc;
  (* The schedule is a pure function of the seed: re-run it traced and
     keep the Chrome timeline of the failing interleaving. *)
  let _, _, tr = run_seed ~seed ~traced:true in
  let trace_file =
    Filename.concat artifact_dir (Printf.sprintf "seed-%d.trace.json" seed) in
  let oc = open_out trace_file in
  output_string oc (Trace.to_chrome_json tr);
  close_out oc;
  Printf.printf "  artifacts: %s, %s\n" seed_file trace_file

let report_seed ~seed (violations, _stats, _) =
  let total = List.length violations in
  if total > 0 then begin
    Printf.printf "  seed %d: %d violation(s)\n" seed total;
    List.iter (fun v -> Printf.printf "    %s\n" v) violations
  end;
  total

let run () =
  Report.header "Schedule fuzzing (seeded, deterministic replay)";
  (match !cpus with
   | Some n when n > 1 ->
     Printf.printf "  hosts built with %d CPUs: the seed also drives which\n" n;
     Printf.printf "  CPU advances and every steal decision\n"
   | _ -> ());
  match !replay with
  | Some seed ->
    Printf.printf "  replaying seed %d\n" seed;
    let result = run_seed ~seed ~traced:false in
    let bad = report_seed ~seed result in
    if bad = 0 then Printf.printf "  seed %d: clean\n" seed
    else begin
      write_artifacts ~seed (let v, _, _ = result in v);
      Report.write_json ();
      exit 1
    end
  | None ->
    let n = !seeds in
    let decisions = ref 0 and injected = ref 0 in
    let failed = ref None in
    let s = ref 1 in
    while !failed = None && !s <= n do
      let seed = !s in
      let (violations, stats, _) as result = run_seed ~seed ~traced:false in
      List.iter
        (fun st ->
          decisions := !decisions + st.Sched_fuzz.decisions;
          injected := !injected + st.Sched_fuzz.injected_preempts)
        stats;
      if report_seed ~seed result > 0 then failed := Some (seed, violations);
      incr s
    done;
    let ran = !s - 1 in
    Printf.printf
      "  %d seed(s): %d scheduling decisions, %d injected preemptions\n"
      ran !decisions !injected;
    Report.metric ~name:"seeds run" ~unit_:"count" (float_of_int ran);
    Report.metric ~name:"scheduling decisions" ~unit_:"count"
      (float_of_int !decisions);
    (match !failed with
     | None -> Printf.printf "  no invariant violations\n"
     | Some (seed, violations) ->
       write_artifacts ~seed violations;
       Report.write_json ();
       exit 1)
