(* SMP scaling: the closed-loop HTTP ramp of the load experiment, held
   at a fixed client population while the number of simulated CPUs per
   host doubles. One level = fresh two-host fixture (client and server
   both [cpus]-way), 16 client strands each running a closed loop of
   connect / GET / drain / close against the server's cached 2 KB
   index.html. Receive processing shards across the server's CPUs
   (one protocol strand per CPU, flows pinned by hash), so both the
   client loops and the server stack spread over the machine.

     dune exec bench/main.exe smp
     dune exec bench/main.exe -- --json BENCH_smp.json smp
     dune exec bench/main.exe -- smp --cpus 4    # ramp only up to 4

   The speedup_2cpu / speedup_4cpu metrics are gated in CI as floors
   against bench/smp_reference.json: scaling that collapses is a
   regression even when absolute throughput holds. *)

open Spin_net
module Clock = Spin_machine.Clock
module Trace = Spin_machine.Trace
module Sched = Spin_sched.Sched

(* Highest CPU count in the ramp (overridden by main.exe --cpus). *)
let max_cpus = ref 8

let clients = 16
let requests_per_client = 20
let latency_key = "smp.request"

(* Scheduler activity that only exists on a multiprocessor — stolen
   strands and cross-CPU wakeups — summed over both hosts so the table
   shows the machinery actually engaging as the ramp climbs. *)
let smp_activity host_a host_b =
  let s h = Sched.stats h.Host.sched in
  let a = s host_a and b = s host_b in
  (a.Sched.steals + b.Sched.steals,
   a.Sched.ipi_wakeups + b.Sched.ipi_wakeups)

(* The scaling ramp must measure the CPUs, not the wire: on the
   default 10 Mbps Lance a 2 KB response spends ~1.8 ms serializing
   onto the cable, which bounds throughput at ~500 req/s no matter
   how many processors the hosts have. Run the same workload over the
   T3's DMA device model on a 622 Mbps (OC-12) wire instead — the
   protocol and driver work per request is unchanged, but the line
   rate stops being the ceiling. *)
let link_kind = Spin_machine.Nic.T3
let link_mbps = 622.

let run_level ~cpus ~traced =
  let clock, client, server =
    B_extra.web_fixture ~cpus ~kind:link_kind ~mbps:link_mbps () in
  let tr = Trace.of_clock clock in
  if traced then Trace.enable tr;
  let total = clients * requests_per_client in
  let completed = ref 0 in
  let t_start = ref 0. and t_end = ref 0. in
  let client_loop () =
    for _ = 1 to requests_per_client do
      let t0 = Clock.now clock in
      B_extra.http_get clock client;
      Trace.record_latency tr ~key:latency_key (Clock.now clock - t0);
      incr completed;
      if !completed = total then t_end := Clock.now_us clock
    done in
  ignore (Sched.spawn client.Host.sched ~name:"driver" (fun () ->
    (* Warm the file/object caches outside the measurement. *)
    B_extra.http_get clock client;
    t_start := Clock.now_us clock;
    for c = 1 to clients do
      ignore (Sched.spawn client.Host.sched
                ~name:(Printf.sprintf "client-%d" c) client_loop)
    done));
  Host.run_all [ client; server ];
  let elapsed_us = !t_end -. !t_start in
  let rps =
    if elapsed_us > 0. then float_of_int total /. (elapsed_us /. 1e6)
    else nan in
  let steals, ipis = smp_activity client server in
  match Trace.summary tr ~key:latency_key with
  | Some s when traced ->
    (rps, s.Trace.p50_us, s.Trace.p99_us, steals, ipis)
  | _ -> (rps, nan, nan, steals, ipis)

let ramp () =
  let rec levels n = if n > !max_cpus then [] else n :: levels (2 * n) in
  levels 1

let run () =
  Report.header
    (Printf.sprintf
       "SMP scaling: closed-loop HTTP, %d clients, 1..%d CPUs per host"
       clients !max_cpus);
  Printf.printf "%-6s %10s %9s %12s %12s %8s %8s\n"
    "cpus" "req/s" "speedup" "p50 (us)" "p99 (us)" "steals" "ipis";
  let base = ref nan in
  let speedups =
    List.map
      (fun cpus ->
         let rps, p50, p99, steals, ipis = run_level ~cpus ~traced:true in
         if Float.is_nan !base then base := rps;
         let speedup = rps /. !base in
         Printf.printf "%-6d %10.0f %8.2fx %12.0f %12.0f %8d %8d\n"
           cpus rps speedup p50 p99 steals ipis;
         let m name unit_ v =
           Report.metric ~unit_
             ~name:(Printf.sprintf "%s cpus=%d" name cpus) v in
         m "req/s" "req/s" rps;
         m "p50" "us" p50;
         m "p99" "us" p99;
         m "steals" "count" (float_of_int steals);
         m "ipi wakeups" "count" (float_of_int ipis);
         (cpus, speedup))
      (ramp ()) in
  List.iter
    (fun (cpus, speedup) ->
       if cpus = 2 || cpus = 4 then
         Report.metric ~unit_:"x"
           ~name:(Printf.sprintf "speedup %dcpu" cpus) speedup)
    speedups;
  Report.note
    "  With the closed loop holding 16 requests in flight, extra CPUs\n\
    \  drain both the client loops and the server's sharded receive\n\
    \  path; scaling bends once the queues are shallower than the\n\
    \  machine is wide.\n"
