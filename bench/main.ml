(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 5) against this reproduction.

     dune exec bench/main.exe                -- everything
     dune exec bench/main.exe table4         -- one experiment
     dune exec bench/main.exe bechamel       -- host-time costs (Bechamel)
     dune exec bench/main.exe -- --json OUT.json table2
                                             -- also write metrics as JSON

   Virtual times are microseconds on the simulated 133 MHz Alpha; see
   DESIGN.md for the cost model and EXPERIMENTS.md for the recorded
   paper-vs-measured results. *)

let experiments = [
  ("table1", "kernel component sizes", B_sizes.table1);
  ("table2", "protected communication", B_micro.table2);
  ("table3", "thread management", B_micro.table3);
  ("table4", "virtual memory operations", B_micro.table4);
  ("table5", "network latency and bandwidth", B_net.table5);
  ("table6", "protocol forwarding", B_net.table6);
  ("table7", "extension sizes", B_sizes.table7);
  ("figure5", "protocol graph", B_net.figure5);
  ("figure6", "video server utilization", B_video.figure6);
  ("dispatcher", "dispatcher scalability (5.5)", B_extra.dispatcher_scaling);
  ("gc", "automatic storage management (5.5)", B_extra.gc_impact);
  ("web", "web server latency (5.4)", B_extra.web);
  ("load", "HTTP load scaling over the zero-copy path (5.4)", B_load.run);
  ("smp", "SMP scaling of the HTTP ramp vs CPUs per host", B_smp.run);
  ("mem", "memory pressure and reclamation (5.2)", B_mem.run);
  ("swap", "live extension hot-swap under load", B_swap.run);
  ("ablation", "design-choice ablations", B_ablation.run);
  ("verifier", "install-time verification vs guarded dispatch", B_verifier.run);
  ("engine", "host-side engine throughput", B_engine.run);
  ("fuzz", "schedule fuzzing with seeded replay", B_fuzz.run);
  ("bechamel", "host-time simulation costs", B_bechamel.run);
]

let usage () =
  print_endline "usage: main.exe [--json FILE] [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, desc, _) -> Printf.printf "  %-12s %s\n" name desc)
    experiments;
  print_endline "  all          every experiment except bechamel and fuzz";
  print_endline "  --json FILE  also write measured metrics to FILE";
  print_endline "  --seeds N    fuzz: run seeds 1..N (default 50)";
  print_endline "  --replay S   fuzz: replay one seed deterministically";
  print_endline "  --cpus N     fuzz: N-CPU hosts; smp: ramp 1,2,..,N (default 8)"

let run_one (name, _, f) =
  Report.experiment name;
  f ()

let run_all () =
  List.iter
    (fun ((name, _, _) as e) ->
      if name <> "bechamel" && name <> "fuzz" then run_one e)
    experiments

let () =
  let rec parse = function
    | "--json" :: path :: rest -> Report.set_json path; parse rest
    | "--json" :: [] ->
      print_endline "--json needs a file argument"; usage (); exit 1
    | "--seeds" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n > 0 -> B_fuzz.seeds := n; parse rest
       | Some _ | None ->
         print_endline "--seeds needs a positive integer"; usage (); exit 1)
    | "--seeds" :: [] ->
      print_endline "--seeds needs an integer argument"; usage (); exit 1
    | "--replay" :: s :: rest ->
      (match int_of_string_opt s with
       | Some s -> B_fuzz.replay := Some s; parse rest
       | None ->
         print_endline "--replay needs an integer seed"; usage (); exit 1)
    | "--replay" :: [] ->
      print_endline "--replay needs a seed argument"; usage (); exit 1
    | "--cpus" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 ->
         B_fuzz.cpus := Some n;
         B_smp.max_cpus := n;
         parse rest
       | Some _ | None ->
         print_endline "--cpus needs a positive integer"; usage (); exit 1)
    | "--cpus" :: [] ->
      print_endline "--cpus needs an integer argument"; usage (); exit 1
    | arg :: rest -> arg :: parse rest
    | [] -> [] in
  (match parse (List.tl (Array.to_list Sys.argv)) with
   | [] | [ "all" ] -> run_all ()
   | [ "help" ] | [ "--help" ] -> usage ()
   | names ->
     List.iter
       (fun name ->
         match List.find_opt (fun (n, _, _) -> n = name) experiments with
         | Some e -> run_one e
         | None ->
           Printf.printf "unknown experiment %S\n" name;
           usage ();
           exit 1)
       names);
  Report.write_json ()
