(* The CI perf gate: compares freshly measured benchmark metrics
   against the checked-in reference and fails the build when a gated
   metric regresses by more than the tolerance. Most gated rows are
   latencies (lower is better); the engine experiment also gates
   counted throughput proxies where a DROP is the regression.

     dune exec bench/check_perf.exe -- \
       bench/table5_reference.json BENCH_load.json

   Reads the spin-bench/1 schema that [Report.write_json] emits; the
   hand-rolled parser covers exactly that writer's output (one object
   of string/number fields per result, backslash escapes in strings)
   so the gate needs no JSON library. *)

let tolerance = 0.10

type metric = {
  experiment : string;
  name : string;
  value : float;
}

exception Parse_error of string

let parse_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while !pos < len
          && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do incr pos done in
  let expect c =
    skip_ws ();
    if !pos < len && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= len then fail "dangling escape";
        (match s.[!pos] with
         | 'u' ->
           if !pos + 4 >= len then fail "short unicode escape";
           let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
           Buffer.add_char buf (Char.chr (code land 0xff));
           pos := !pos + 5
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | c -> Buffer.add_char buf c; incr pos);
        go ()
      | c -> Buffer.add_char buf c; incr pos; go () in
    go ();
    Buffer.contents buf in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while !pos < len
          && (match s.[!pos] with
              | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
              | _ -> false)
    do incr pos done;
    if !pos = start then fail "expected number";
    float_of_string (String.sub s start (!pos - start)) in
  let parse_result () =
    expect '{';
    let experiment = ref "" and name = ref "" and value = ref nan in
    let rec fields () =
      let key = parse_string () in
      expect ':';
      (match key with
       | "experiment" -> experiment := parse_string ()
       | "name" -> name := parse_string ()
       | "value" -> value := parse_number ()
       | _ -> ignore (parse_string ()));
      skip_ws ();
      if !pos < len && s.[!pos] = ',' then begin incr pos; fields () end in
    fields ();
    expect '}';
    { experiment = !experiment; name = !name; value = !value } in
  (* Top level: {"schema":"...","results":[...]} *)
  expect '{';
  let results = ref [] in
  let rec top () =
    let key = parse_string () in
    expect ':';
    (match key with
     | "results" ->
       expect '[';
       skip_ws ();
       if !pos < len && s.[!pos] = ']' then incr pos
       else
         let rec elems () =
           results := parse_result () :: !results;
           skip_ws ();
           if !pos < len && s.[!pos] = ',' then begin incr pos; elems () end
           else expect ']' in
         elems ()
     | _ -> ignore (parse_string ()));
    skip_ws ();
    if !pos < len && s.[!pos] = ',' then begin incr pos; top () end in
  top ();
  List.rev !results

(* The gated rows and which direction counts as a regression.

   Latency-shaped metrics (Table 5, reclaim, swap pauses) fail when
   they grow past the ceiling. The engine experiment instead gates
   deterministic counted proxies — events processed, events fired,
   fuzz decisions — which fail when they DROP below the floor (work
   silently skipped), plus minor-heap words per event, which fails
   upward like a latency (allocation crept back into the hot path).
   Wall-clock rates (events/sec and friends) are recorded for
   trending but never gated: CI hosts are too noisy to fail on. *)
type direction = Ceiling | Floor

let gated m =
  let has_sub sub =
    let n = String.length sub in
    let rec at i =
      i + n <= String.length m.name
      && (String.sub m.name i n = sub || at (i + 1)) in
    at 0 in
  if m.experiment = "table5" && has_sub "latency" then Some Ceiling
  else if m.experiment = "mem" && has_sub "reclaim p" then Some Ceiling
  else if m.experiment = "swap" && has_sub "pause p" then Some Ceiling
  else if m.experiment = "engine" then
    match m.name with
    | "storm wheel minor words/event" -> Some Ceiling
    | "storm events processed" | "http events fired" | "fuzz decisions" ->
      Some Floor
    | _ -> None
  else if m.experiment = "verifier" then
    (* All deterministic virtual-time numbers. The speedups gate as
       floors: losing one means verified handlers picked up a
       per-event check somewhere (the whole point undone quietly).
       The verified dispatch costs and the one-time verification cost
       gate as ceilings. *)
    (if has_sub "speedup" then Some Floor
     else if has_sub "verified" || has_sub "install" then Some Ceiling
     else None)
  else if m.experiment = "smp" then
    (* Virtual-time throughput is deterministic, so the scaling ratios
       gate as floors: a change that quietly serializes the multi-CPU
       path (a stray global lock, affinity gone wrong, sharding broken)
       drops the speedup even when 1-CPU throughput is unchanged. *)
    match m.name with
    | "speedup 2cpu" | "speedup 4cpu" -> Some Floor
    | _ -> None
  else None

let () =
  match Sys.argv with
  | [| _; reference_path; current_path |] ->
    let reference = parse_file reference_path in
    let current = parse_file current_path in
    let failures = ref 0 and checked = ref 0 in
    List.iter
      (fun r ->
         match gated r with
         | None -> ()
         | Some dir ->
           match
             List.find_opt
               (fun c -> c.experiment = r.experiment && c.name = r.name)
               current
           with
           | None ->
             incr failures;
             Printf.printf "MISSING  %-34s reference %.1f, not measured\n"
               r.name r.value
           | Some c ->
             incr checked;
             (match dir with
              | Ceiling ->
                let limit = r.value *. (1. +. tolerance) in
                if c.value > limit then begin
                  incr failures;
                  Printf.printf
                    "FAIL     %-34s %.1f > %.1f (+%.0f%% ceiling)\n"
                    r.name c.value limit (tolerance *. 100.)
                end else
                  Printf.printf "ok       %-34s %.1f (reference %.1f)\n"
                    r.name c.value r.value
              | Floor ->
                let floor_v = r.value *. (1. -. tolerance) in
                if c.value < floor_v then begin
                  incr failures;
                  Printf.printf
                    "FAIL     %-34s %.1f < %.1f (-%.0f%% floor)\n"
                    r.name c.value floor_v (tolerance *. 100.)
                end else
                  Printf.printf "ok       %-34s %.1f (reference %.1f)\n"
                    r.name c.value r.value))
      reference;
    if !checked = 0 then begin
      print_endline
        "no gated metrics found: run the experiment with --json first";
      exit 1
    end;
    if !failures > 0 then begin
      Printf.printf "%d perf gate failure(s)\n" !failures;
      exit 1
    end;
    Printf.printf "all %d gated metrics within %.0f%% of reference\n"
      !checked (tolerance *. 100.)
  | _ ->
    prerr_endline "usage: check_perf REFERENCE.json CURRENT.json";
    exit 2
