(* Memory pressure and reclamation (section 5.2): the in-kernel web
   server keeps fetching from its page-backed caches while a hog
   strand allocates past the free pool. With the reclamation protocol
   on, allocation pressure drains the caches' coldest pages (and the
   pageout daemon stays ahead of demand); with it off, the same
   workload starves — the ablation the paper's extensibility argument
   predicts.

     dune exec bench/main.exe mem
     dune exec bench/main.exe -- --json BENCH_mem.json mem *)

open Spin_net
module Machine = Spin_machine.Machine
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Nic = Spin_machine.Nic
module Trace = Spin_machine.Trace
module Sched = Spin_sched.Sched
module Phys_addr = Spin_vm.Phys_addr
module Pageout = Spin_vm.Pageout

let addr_server = Ip.addr_of_quad 10 0 9 1
let addr_client = Ip.addr_of_quad 10 0 9 2

let n_files = 8
let file_bytes = 6 * 1024
let requests = 320
let latency_key = "mem.fetch"

(* A small server: 2 MB of physical memory (256 pages) so cache
   capacity and hog pressure meet quickly. *)
let fixture () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create ~mem_mb:2 sim ~name:"www" ~addr:addr_server in
  let client = Host.create sim ~name:"client" ~addr:addr_client in
  ignore (Host.wire client server ~kind:Nic.Lance);
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc = Spin_fs.Block_cache.create ~capacity_blocks:512
      ~phys:server.Host.phys server.Host.machine server.Host.sched disk in
  let cache = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    for i = 0 to n_files - 1 do
      let name = Printf.sprintf "f%d.html" i in
      Spin_fs.Simple_fs.create fs ~name;
      Spin_fs.Simple_fs.write fs ~name (Bytes.make file_bytes 'x')
    done;
    let c = Spin_fs.File_cache.create ~capacity_bytes:(192 * 1024)
        ~phys:server.Host.phys fs in
    ignore (Http.create server.Host.machine server.Host.sched
              server.Host.tcp c);
    cache := Some c));
  Host.run_all [ client; server ];
  (clock, client, server, bc, Option.get !cache)

let http_get client ~path =
  match Tcp.connect client.Host.tcp ~dst:addr_server ~dst_port:80 with
  | None -> false
  | Some conn ->
    Tcp.send client.Host.tcp conn
      (Bytes.of_string (Printf.sprintf "GET /%s HTTP/1.0\r\n\r\n" path));
    let got = ref 0 in
    let rec drain () =
      let data = Tcp.read client.Host.tcp conn in
      if Bytes.length data > 0 then begin
        got := !got + Bytes.length data;
        drain ()
      end in
    drain ();
    !got > file_bytes

type outcome = {
  p50 : float;
  p99 : float;
  hit_rate : float;
  reclaims : int;
  released : int;                       (* by the pageout daemon *)
  hog_oom : int;                        (* hog allocations refused *)
  fetch_failures : int;                 (* short or failed responses *)
  degraded : int;                       (* cache inserts refused *)
  reclaim_span : Trace.summary option;  (* the vm.reclaim histogram *)
}

(* One run: [hog] turns the allocation antagonist on; [reclaim] is
   the ablation switch for the whole reclamation protocol. *)
let run_case ~hog ~reclaim =
  let clock, client, server, bc, cache = fixture () in
  let phys = server.Host.phys in
  if not reclaim then Phys_addr.set_reclaim_enabled phys false;
  let tr = Trace.of_clock clock in
  Trace.enable tr;
  let stop = ref false in
  let hog_oom = ref 0 in
  let hog_pages = ref [] in
  if hog then
    ignore (Sched.spawn server.Host.sched ~name:"hog" (fun () ->
      (* Phase 1: empty the free pool outright. Phase 2: keep
         allocating (and holding) past it for the rest of the run. *)
      while not !stop && Phys_addr.free_pages phys > 4 do
        hog_pages :=
          Phys_addr.allocate phys ~owner:"hog" ~bytes:Spin_machine.Addr.page_size
          :: !hog_pages;
        Sched.sleep_us server.Host.sched 1.
      done;
      while not !stop do
        (match
           Phys_addr.allocate phys ~owner:"hog" ~bytes:Spin_machine.Addr.page_size
         with
         | p -> hog_pages := p :: !hog_pages
         | exception Phys_addr.Out_of_memory -> incr hog_oom);
        Sched.sleep_us server.Host.sched 20_000.
      done));
  let pd =
    if hog && reclaim then begin
      let pd = Pageout.create ~low_water:16 ~high_water:32 server.Host.sched
          phys in
      Pageout.start pd;
      Some pd
    end else None in
  let fetch_failures = ref 0 in
  ignore (Sched.spawn client.Host.sched ~name:"driver" (fun () ->
    (* Let the hog empty the pool first, then warm the caches under
       pressure (the warm pass is not measured). *)
    Sched.sleep_us client.Host.sched 2_000.;
    for i = 0 to n_files - 1 do
      ignore (http_get client ~path:(Printf.sprintf "f%d.html" i))
    done;
    for r = 0 to requests - 1 do
      let path = Printf.sprintf "f%d.html" (r mod n_files) in
      let t0 = Clock.now clock in
      if not (http_get client ~path) then incr fetch_failures;
      Trace.record_latency tr ~key:latency_key (Clock.now clock - t0)
    done;
    stop := true;
    Option.iter Pageout.stop pd));
  Host.run_all [ client; server ];
  let fetch = Trace.summary tr ~key:latency_key in
  let p50, p99 =
    match fetch with
    | Some s -> (s.Trace.p50_us, s.Trace.p99_us)
    | None -> (nan, nan) in
  {
    p50;
    p99;
    hit_rate = Spin_fs.Cache_stats.hit_rate (Spin_fs.File_cache.stats cache);
    reclaims = Phys_addr.reclaims phys;
    released = (match pd with Some pd -> Pageout.released pd | None -> 0);
    hog_oom = !hog_oom;
    fetch_failures = !fetch_failures;
    degraded =
      Spin_fs.File_cache.degraded cache + Spin_fs.Block_cache.degraded bc;
    reclaim_span = Trace.summary tr ~key:"vm.reclaim";
  }

let run () =
  Report.header
    "Memory pressure: page-backed caches under an allocation hog (5.2)";
  let control = run_case ~hog:false ~reclaim:true in
  let pressure = run_case ~hog:true ~reclaim:true in
  let ablation = run_case ~hog:true ~reclaim:false in
  Printf.printf "%-26s %10s %10s %8s %9s %8s %8s\n"
    "case" "p50 (us)" "p99 (us)" "hit%" "reclaims" "hog-oom" "failed";
  let row name o =
    Printf.printf "%-26s %10.0f %10.0f %8.1f %9d %8d %8d\n"
      name o.p50 o.p99 (100. *. o.hit_rate) o.reclaims o.hog_oom
      o.fetch_failures in
  row "no hog (control)" control;
  row "hog + reclamation" pressure;
  row "hog, reclamation off" ablation;
  let ratio = ablation.p99 /. pressure.p99 in
  Printf.printf
    "  pageout daemon released %d pages ahead of demand\n\
    \  caches refused %d inserts under the no-reclaim ablation (%d with)\n\
    \  ablation p99 degradation: %.1fx (>= 2x required)\n"
    pressure.released ablation.degraded pressure.degraded ratio;
  (match pressure.reclaim_span with
   | Some s ->
     Printf.printf
       "  reclaim path: %d reclaims traced, p50 %.1f us, p99 %.1f us\n"
       s.Trace.count s.Trace.p50_us s.Trace.p99_us
   | None -> print_endline "  reclaim path: no spans traced");
  Report.note
    "  The fetch loop never sees Out_of_memory in any case: with the\n\
    \  protocol on, pressure drains the caches' coldest pages; with it\n\
    \  off, the caches shed load by serving uncached straight from\n\
    \  disk -- which is exactly the latency cliff the ablation shows.\n";
  let m case o =
    Report.metric ~unit_:"us" ~name:(Printf.sprintf "fetch p50 %s" case) o.p50;
    Report.metric ~unit_:"us" ~name:(Printf.sprintf "fetch p99 %s" case) o.p99;
    Report.metric ~unit_:"%" ~name:(Printf.sprintf "hit rate %s" case)
      (100. *. o.hit_rate);
    Report.metric ~unit_:"count" ~name:(Printf.sprintf "fetch failures %s" case)
      (float_of_int o.fetch_failures);
    Report.metric ~unit_:"count" ~name:(Printf.sprintf "hog oom %s" case)
      (float_of_int o.hog_oom) in
  m "control" control;
  m "pressure" pressure;
  m "ablation" ablation;
  Report.metric ~unit_:"count" ~name:"reclaims pressure"
    (float_of_int pressure.reclaims);
  Report.metric ~unit_:"count" ~name:"pageout released"
    (float_of_int pressure.released);
  Report.metric ~unit_:"x" ~name:"ablation p99 ratio" ratio;
  (match pressure.reclaim_span with
   | Some s ->
     (* Gated in CI: the reclaim path itself must not regress. *)
     Report.metric ~unit_:"us" ~name:"reclaim p50 us" s.Trace.p50_us;
     Report.metric ~unit_:"us" ~name:"reclaim p99 us" s.Trace.p99_us
   | None -> ())
