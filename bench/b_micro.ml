(* Tables 2-4: protected communication, thread management, virtual
   memory. SPIN rows run on the real kernel; OSF/1 and Mach rows run
   on the baseline models over the same simulated machine. *)

module Kernel = Spin.Kernel
module Dispatcher = Spin_core.Dispatcher
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Mmu = Spin_machine.Mmu
module Machine = Spin_machine.Machine
module Cpu = Spin_machine.Cpu
module Addr = Spin_machine.Addr
module Sched = Spin_sched.Sched
module Kthread = Spin_sched.Kthread
module Vm_ext = Spin_vm.Vm_ext
module Translation = Spin_vm.Translation
module Bl = Spin_baseline.Bl_kernel
module Os_costs = Spin_baseline.Os_costs

let iters = 64

let avg_us_of k thunk =
  let us = Kernel.stamp_us k (fun () -> for _ = 1 to iters do thunk () done) in
  us /. float_of_int iters

let avg_us_bl b thunk =
  let us = Bl.stamp_us b (fun () -> for _ = 1 to iters do thunk () done) in
  us /. float_of_int iters

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

(* The SPIN cross-address-space call: an extension that uses system
   calls to enter the kernel and cross-domain procedure calls within
   it; the transfer parks the client strand, switches to the server's
   address space, upcalls the server, and returns symmetrically. The
   per-leg extension bookkeeping (externalized-reference checks,
   argument validation) is the one calibrated constant. *)
let ipc_leg_bookkeeping = 2_970

let spin_cross_as_call k ctx_client ctx_server =
  let m = k.Kernel.machine in
  let clock = m.Machine.clock in
  let hw = m.Machine.cost in
  let leg target_ctx =
    ignore (Kernel.syscall k ~number:7 ~args:[||]);   (* enter kernel *)
    Clock.charge clock ipc_leg_bookkeeping;           (* IPC extension *)
    Clock.charge clock (hw.Cost.context_switch + 160);(* park + run peer *)
    Cpu.set_context m.Machine.cpu (Some target_ctx);  (* address space *)
    Clock.charge clock (hw.Cost.trap_exit + hw.Cost.trap_entry)
    (* upcall into the peer and back into the kernel *) in
  leg ctx_server;                                     (* request *)
  leg ctx_client                                      (* reply *)

let table2 () =
  Report.header "Table 2: protected communication (us)";
  Report.columns4 "operation" "paper" "measured" "system";
  (* SPIN *)
  let k = Kernel.boot ~name:"t2" () in
  Kernel.register_syscall k ~number:7 (fun _ -> 0);
  let e = Dispatcher.declare k.Kernel.dispatcher ~name:"T2.Null" ~owner:"T2"
      (fun () -> ()) in
  let in_kernel = avg_us_of k (fun () -> Dispatcher.raise_event e ()) in
  let syscall = avg_us_of k (fun () -> ignore (Kernel.syscall k ~number:7 ~args:[||])) in
  let ctx_c = Mmu.create_context k.Kernel.machine.Machine.mmu in
  let ctx_s = Mmu.create_context k.Kernel.machine.Machine.mmu in
  Cpu.set_context k.Kernel.machine.Machine.cpu (Some ctx_c);
  let cross = avg_us_of k (fun () -> spin_cross_as_call k ctx_c ctx_s) in
  (* Baselines *)
  let osf = Bl.create Os_costs.osf1 ~name:"t2-osf" in
  let mach = Bl.create Os_costs.mach3 ~name:"t2-mach" in
  let osf_sys = avg_us_bl osf (fun () -> Bl.null_syscall osf) in
  let mach_sys = avg_us_bl mach (fun () -> Bl.null_syscall mach) in
  let osf_cross = avg_us_bl osf (fun () -> Bl.cross_address_space_call osf) in
  let mach_cross = avg_us_bl mach (fun () -> Bl.cross_address_space_call mach) in
  let p name paper measured sys =
    Printf.printf "%-28s %12.2f %12.2f %12s\n" name paper measured sys;
    Report.metric ~name:(sys ^ ": " ^ name) measured in
  p "Protected in-kernel call" 0.13 in_kernel "SPIN";
  p "System call" 4. syscall "SPIN";
  p "System call" 5. osf_sys "DEC OSF/1";
  p "System call" 7. mach_sys "Mach";
  p "Cross-address space call" 89. cross "SPIN";
  p "Cross-address space call" 845. osf_cross "DEC OSF/1";
  p "Cross-address space call" 104. mach_cross "Mach"

(* ------------------------------------------------------------------ *)
(* Table 3                                                            *)
(* ------------------------------------------------------------------ *)

(* SPIN user-level C-Threads implementations: both run user code above
   the kernel extension; the "layered" one goes through an emulated
   Mach kernel-thread interface (more crossings and library work), the
   "integrated" one is a kernel extension exporting C-Threads directly
   through system calls. Constants are user-library path lengths. *)
type user_pkg = {
  fork_syscalls : int;
  fork_library : int;      (* cycles: stack + descriptor setup in user *)
  sync_syscalls : int;     (* per ping-pong iteration *)
  sync_library : int;
}

let integrated = {
  fork_syscalls = 2;
  fork_library = 11_170;
  sync_syscalls = 2;
  sync_library = 1_130;
}

let layered = {
  fork_syscalls = 5;
  fork_library = 29_600;
  sync_syscalls = 2;
  sync_library = 3_600;
}

let spin_user_charges k pkg ~syscalls ~library =
  for _ = 1 to syscalls do
    ignore (Kernel.syscall k ~number:8 ~args:[||])
  done;
  Clock.charge k.Kernel.machine.Machine.clock library;
  ignore pkg

let spin_fork_join k pkg () =
  (match pkg with
   | Some p -> spin_user_charges k p ~syscalls:p.fork_syscalls ~library:p.fork_library
   | None -> ());
  let child = Kthread.fork k.Kernel.sched (fun () -> ()) in
  Kthread.join k.Kernel.sched child

let spin_ping_pong k pkg ~iters () =
  let s = k.Kernel.sched in
  let mu = Kthread.Mutex.create () in
  let cond = Kthread.Condition.create () in
  let turn = ref `Ping in
  let extra () =
    match pkg with
    | Some p -> spin_user_charges k p ~syscalls:p.sync_syscalls ~library:p.sync_library
    | None -> () in
  let player me other () =
    Kthread.Mutex.lock s mu;
    for _ = 1 to iters do
      while !turn <> me do extra (); Kthread.Condition.wait s mu cond done;
      turn := other;
      extra ();
      Kthread.Condition.signal s cond
    done;
    Kthread.Mutex.unlock s mu in
  let a = Kthread.fork s (player `Ping `Pong) in
  let b = Kthread.fork s (player `Pong `Ping) in
  Kthread.join s a;
  Kthread.join s b

let measure_spin_thread_ops pkg =
  let k = Kernel.boot ~name:"t3" () in
  Kernel.register_syscall k ~number:8 (fun _ -> 0);
  let fj = ref 0. and pp = ref 0. in
  ignore (Kernel.spawn k ~name:"bench" (fun () ->
    let us = Kernel.stamp_us k (fun () ->
      for _ = 1 to 16 do spin_fork_join k pkg () done) in
    fj := us /. 16.;
    let n = 64 in
    let us = Kernel.stamp_us k (fun () -> spin_ping_pong k pkg ~iters:n ()) in
    pp := us /. float_of_int n));
  Kernel.run k;
  (!fj, !pp)

let measure_bl_thread_ops os ~user =
  let b = Bl.create os ~name:"t3-bl" in
  let fj = ref 0. and pp = ref 0. in
  Bl.in_kernel_thread b (fun () ->
    let us = Bl.stamp_us b (fun () ->
      for _ = 1 to 16 do Bl.fork_join b ~user done) in
    fj := us /. 16.;
    let n = 64 in
    let us = Bl.stamp_us b (fun () -> Bl.ping_pong b ~user ~iters:n) in
    pp := us /. float_of_int n);
  (!fj, !pp)

let table3 () =
  Report.header "Table 3: thread management (us)";
  Printf.printf "%-34s %10s %10s %10s %10s\n" "system"
    "FJ paper" "FJ ours" "PP paper" "PP ours";
  let p name (fjp, ppp) (fj, pp) =
    Printf.printf "%-34s %10.0f %10.1f %10.0f %10.1f\n" name fjp fj ppp pp;
    Report.metric ~name:(name ^ ": fork-join") fj;
    Report.metric ~name:(name ^ ": ping-pong") pp in
  p "DEC OSF/1 kernel" (198., 21.) (measure_bl_thread_ops Os_costs.osf1 ~user:false);
  p "DEC OSF/1 user (P-threads)" (1230., 264.) (measure_bl_thread_ops Os_costs.osf1 ~user:true);
  p "Mach kernel" (101., 71.) (measure_bl_thread_ops Os_costs.mach3 ~user:false);
  p "Mach user (C-Threads)" (338., 115.) (measure_bl_thread_ops Os_costs.mach3 ~user:true);
  p "SPIN kernel" (22., 17.) (measure_spin_thread_ops None);
  p "SPIN user (layered)" (262., 159.) (measure_spin_thread_ops (Some layered));
  p "SPIN user (integrated)" (111., 85.) (measure_spin_thread_ops (Some integrated))

(* ------------------------------------------------------------------ *)
(* Table 4                                                            *)
(* ------------------------------------------------------------------ *)

type vm_row = {
  dirty : float option;
  fault : float;
  trap : float;
  prot1 : float;
  prot100 : float;
  unprot100 : float;
  appel1 : float;
  appel2 : float;
}

let measure_spin_vm () =
  let k = Kernel.boot ~name:"t4" () in
  let ext = Vm_ext.create k.Kernel.vm ~app:"bench" ~pages:128 in
  Vm_ext.activate ext;
  (* Dirty *)
  Vm_ext.write ext ~page:5 1L;
  let dirty = Kernel.stamp_us k (fun () -> ignore (Vm_ext.dirty ext ~page:5)) in
  (* Prot1 / Prot100 / Unprot100 *)
  let prot1 = Kernel.stamp_us k (fun () ->
    Vm_ext.protect ext ~first:0 ~count:1 Addr.prot_read) in
  Vm_ext.protect ext ~first:0 ~count:1 Addr.prot_read_write;
  let prot100 = Kernel.stamp_us k (fun () ->
    Vm_ext.protect ext ~first:0 ~count:100 Addr.prot_read) in
  let unprot100 = Kernel.stamp_us k (fun () ->
    Vm_ext.protect ext ~first:0 ~count:100 Addr.prot_read_write) in
  (* Trap: fault-to-handler latency. *)
  let fault_entered = ref 0. in
  Vm_ext.on_protection_fault ext (fun page ->
    fault_entered := Kernel.elapsed_us k;
    Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write);
  Vm_ext.protect ext ~first:3 ~count:1 Addr.prot_read;
  let start = Kernel.elapsed_us k in
  let fault = Kernel.stamp_us k (fun () -> Vm_ext.write ext ~page:3 1L) in
  let trap = !fault_entered -. start in
  (* Appel1: fault; in the handler unprotect the page, protect another. *)
  Vm_ext.on_protection_fault ext (fun page ->
    Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write;
    Vm_ext.protect ext ~first:((page + 1) mod 128) ~count:1 Addr.prot_read);
  Vm_ext.protect ext ~first:10 ~count:1 Addr.prot_read;
  let appel1 = Kernel.stamp_us k (fun () -> Vm_ext.write ext ~page:10 1L) in
  Vm_ext.protect ext ~first:11 ~count:1 Addr.prot_read_write;
  (* Appel2: protect 100, fault on each. *)
  Vm_ext.on_protection_fault ext (fun page ->
    Vm_ext.protect ext ~first:page ~count:1 Addr.prot_read_write);
  let appel2 = Kernel.stamp_us k (fun () ->
    Vm_ext.protect ext ~first:0 ~count:100 Addr.prot_read;
    for i = 0 to 99 do Vm_ext.write ext ~page:i 1L done) /. 100. in
  { dirty = Some dirty; fault; trap; prot1; prot100; unprot100; appel1; appel2 }

let measure_bl_vm os =
  let b = Bl.create os ~name:"t4-bl" in
  Bl.vm_setup b ~pages:128;
  let prot1 = Bl.stamp_us b (fun () ->
    Bl.vm_protect b ~first:0 ~count:1 ~writable:false) in
  Bl.vm_protect b ~first:0 ~count:1 ~writable:true;
  let prot100 = Bl.stamp_us b (fun () ->
    Bl.vm_protect b ~first:0 ~count:100 ~writable:false) in
  let unprot100 = Bl.stamp_us b (fun () ->
    Bl.vm_protect b ~first:0 ~count:100 ~writable:true) in
  let trap = Bl.vm_trap_latency b in
  let fault = Bl.stamp_us b (fun () -> Bl.vm_fault_total b) in
  let appel1 = Bl.stamp_us b (fun () -> Bl.vm_appel1 b) in
  let appel2 = Bl.vm_appel2_per_page b ~pages:100 in
  { dirty = None; fault; trap; prot1; prot100; unprot100; appel1; appel2 }

let paper_osf = { dirty = None; fault = 329.; trap = 260.; prot1 = 45.;
                  prot100 = 1041.; unprot100 = 1016.; appel1 = 382.; appel2 = 351. }
let paper_mach = { dirty = None; fault = 415.; trap = 185.; prot1 = 106.;
                   prot100 = 1792.; unprot100 = 302.; appel1 = 819.; appel2 = 608. }
let paper_spin = { dirty = Some 2.; fault = 29.; trap = 7.; prot1 = 16.;
                   prot100 = 213.; unprot100 = 214.; appel1 = 39.; appel2 = 29. }

let table4 () =
  Report.header "Table 4: virtual memory operations (us, paper/measured)";
  let osf = measure_bl_vm Os_costs.osf1 in
  let mach = measure_bl_vm Os_costs.mach3 in
  let spin = measure_spin_vm () in
  Printf.printf "%-12s %16s %16s %16s\n" "operation" "DEC OSF/1" "Mach" "SPIN";
  let cell paper ours = Printf.sprintf "%.0f/%.1f" paper ours in
  let dirty_cell paper ours =
    match paper, ours with
    | Some p, Some o -> cell p o
    | _ -> "n/a" in
  let ops = [
    ("Fault", fun r -> r.fault); ("Trap", fun r -> r.trap);
    ("Prot1", fun r -> r.prot1); ("Prot100", fun r -> r.prot100);
    ("Unprot100", fun r -> r.unprot100);
    ("Appel1", fun r -> r.appel1); ("Appel2", fun r -> r.appel2);
  ] in
  List.iter
    (fun (sys, row) ->
       List.iter (fun (op, get) -> Report.metric ~name:(sys ^ ": " ^ op) (get row))
         ops;
       match row.dirty with
       | Some d -> Report.metric ~name:(sys ^ ": Dirty") d
       | None -> ())
    [ ("DEC OSF/1", osf); ("Mach", mach); ("SPIN", spin) ];
  let line name f =
    Printf.printf "%-12s %16s %16s %16s\n" name
      (f paper_osf osf) (f paper_mach mach) (f paper_spin spin) in
  line "Dirty" (fun p o -> dirty_cell p.dirty o.dirty);
  line "Fault" (fun p o -> cell p.fault o.fault);
  line "Trap" (fun p o -> cell p.trap o.trap);
  line "Prot1" (fun p o -> cell p.prot1 o.prot1);
  line "Prot100" (fun p o -> cell p.prot100 o.prot100);
  line "Unprot100" (fun p o -> cell p.unprot100 o.unprot100);
  line "Appel1" (fun p o -> cell p.appel1 o.appel1);
  line "Appel2" (fun p o -> cell p.appel2 o.appel2)
