(* Install-time verification vs runtime guards: the Table 2-style
   dispatch microbenches run on both paths.

   A guarded handler pays guard evaluation and bounded-time policing
   on every event; a handler whose predicate verified at install
   dispatches trusted-fast, with zero per-event checks. The difference
   is the recurring cost SPIN's link-time safety argument says should
   not exist — this experiment measures it, plus the one-time
   verification cost an install pays to buy it, and the same trade on
   the section-2 packet-filter foil (interpreted stack machine vs
   verified register bytecode on the receive path).

   Everything here is virtual time on the simulated 133 MHz Alpha, so
   the numbers are deterministic and CI gates on them: floors on the
   verified-path speedups, ceilings on the verified dispatch cost and
   the install-time verification cost. *)

module Dispatcher = Spin_core.Dispatcher
module Ebc = Spin_core.Ebc
module Ty = Spin_core.Ty
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
open Spin_net

let events = 1000

type probe = { port : int }

let probe_layout : probe Ebc.layout =
  Ebc.layout ~name:"Bench.Probe" ~fields:[ ("port", Ty.Int) ]
    ~read:(fun p _ -> p.port) ()

let fixture () =
  let clock = Clock.create Cost.alpha_133 in
  let disp = Dispatcher.create clock in
  let e =
    Dispatcher.declare disp ~name:"Bench.Probe" ~owner:"bench"
      ~layout:probe_layout ~combine:(fun _ -> ())
      ~allow_remove_primary:(fun ~requester:_ -> true)
      (fun (_ : probe) -> ()) in
  (* The installed handler IS the implementation (the Table 2 shape):
     retire the declaring module's default so both columns measure
     pure extension dispatch, not a shared primary invocation. *)
  (match Dispatcher.remove_primary e ~requester:"bench" with
   | Ok () -> ()
   | Error `Denied -> assert false);
  (clock, e)

let must = function
  | Ok h -> h
  | Error err ->
    failwith ("b_verifier install: " ^ Dispatcher.install_error_to_string err)

let install_guarded e port =
  ignore
    (must
       (Dispatcher.install e ~installer:"bench"
          ~spec:(Dispatcher.Handler_spec.guarded (fun p -> p.port = port))
          (fun _ -> ())))

let install_verified e port =
  ignore
    (must
       (Dispatcher.install e ~installer:"bench"
          ~spec:
            (Dispatcher.Handler_spec.verified (Ebc.match_field ~slot:0 port))
          (fun _ -> ())))

(* Cycles per event with [handlers] port-demux handlers installed and
   every raise matching exactly one of them — the 16-way case is the
   paper's active-messages demux shape. *)
let dispatch_cycles ~handlers install =
  let clock, e = fixture () in
  for port = 0 to handlers - 1 do install e port done;
  let spent =
    Clock.stamp clock (fun () ->
        for n = 0 to events - 1 do
          Dispatcher.raise_default e () { port = n mod handlers }
        done) in
  float_of_int spent /. float_of_int events

(* The one-time price of the trusted path: virtual cycles charged to
   verify and admit one port-demux program, reported in us. *)
let install_cost () =
  let clock, e = fixture () in
  let spent = Clock.stamp clock (fun () -> install_verified e 7) in
  Cost.cycles_to_us Cost.alpha_133 spent

(* The section-2 foil, both ways: the same UDP port filter as an
   interpreted stack program (per-instruction interpretation charged
   every packet) and translated to verified bytecode (checked once at
   install, trusted-fast thereafter). *)
let frame_layout : Pkt.t Ebc.layout =
  Ebc.layout ~name:"Bench.PktArrived" ~fields:[ ("len", Ty.Int) ]
    ~read:(fun pkt _ -> Pkt.length pkt)
    ~payload:Pkt.view ()

let udp_frame ~port =
  let b = Bytes.make 64 '\000' in
  Bytes.set_uint16_le b 0 0x0800;
  Bytes.set_uint8 b 2 Ip.proto_udp;
  Bytes.set_uint16_le b 16 port;
  Pkt.of_payload b

let filter_cycles ~compiled =
  let clock = Clock.create Cost.alpha_133 in
  let disp = Dispatcher.create clock in
  let e =
    Dispatcher.declare disp ~name:"Bench.PktArrived" ~owner:"bench"
      ~layout:frame_layout ~combine:(fun _ -> ())
      ~allow_remove_primary:(fun ~requester:_ -> true)
      (fun (_ : Pkt.t) -> ()) in
  (match Dispatcher.remove_primary e ~requester:"bench" with
   | Ok () -> ()
   | Error `Denied -> assert false);
  let program = Pkt_filter.match_udp_port ~port:53 in
  (if compiled then
     let prog =
       match Pkt_filter.to_ebc program with
       | Ok p -> p
       | Error why -> failwith ("b_verifier to_ebc: " ^ why) in
     ignore
       (must
          (Dispatcher.install e ~installer:"bench"
             ~spec:(Dispatcher.Handler_spec.verified prog)
             (fun _ -> ())))
   else
     ignore
       (must
          (Dispatcher.install e ~installer:"bench"
             ~spec:
               (Dispatcher.Handler_spec.guarded (fun pkt ->
                    Pkt_filter.run_view clock program pkt))
             (fun _ -> ()))));
  let matching = udp_frame ~port:53 in
  let other = udp_frame ~port:80 in
  let spent =
    Clock.stamp clock (fun () ->
        for n = 0 to events - 1 do
          Dispatcher.raise_default e ()
            (if n land 1 = 0 then matching else other)
        done) in
  float_of_int spent /. float_of_int events

let run () =
  Report.header
    "Verified bytecode: install-time checks vs per-event guards (cycles/event)";
  Printf.printf "%-34s %10s %10s %9s\n" "dispatch shape" "guarded" "verified"
    "speedup";
  let row name guarded verified =
    Printf.printf "%-34s %10.0f %10.0f %8.1fx\n" name guarded verified
      (guarded /. verified);
    guarded /. verified in
  let g1 = dispatch_cycles ~handlers:1 install_guarded in
  let v1 = dispatch_cycles ~handlers:1 install_verified in
  let s1 = row "1 handler, 1 guard" g1 v1 in
  let g16 = dispatch_cycles ~handlers:16 install_guarded in
  let v16 = dispatch_cycles ~handlers:16 install_verified in
  let s16 = row "16-way port demux" g16 v16 in
  let fi = filter_cycles ~compiled:false in
  let fc = filter_cycles ~compiled:true in
  let sf = row "packet filter (section 2 foil)" fi fc in
  let inst = install_cost () in
  Printf.printf "%-34s %10s %8.2f us  (one-time, per install)\n"
    "verification cost" "" inst;
  Report.note
    "  The guarded column pays guard evaluation per event; the verified\n\
    \  column moved the same predicate through the install-time verifier\n\
    \  and dispatches with zero per-event checks.\n";
  Report.metric ~name:"guarded 1-guard cycles/event" ~unit_:"cycles" g1;
  Report.metric ~name:"verified 1-guard cycles/event" ~unit_:"cycles" v1;
  Report.metric ~name:"speedup 1 guard" ~unit_:"ratio" s1;
  Report.metric ~name:"guarded demux16 cycles/event" ~unit_:"cycles" g16;
  Report.metric ~name:"verified demux16 cycles/event" ~unit_:"cycles" v16;
  Report.metric ~name:"speedup 16-way demux" ~unit_:"ratio" s16;
  Report.metric ~name:"filter interpreted cycles/pkt" ~unit_:"cycles" fi;
  Report.metric ~name:"filter verified cycles/pkt" ~unit_:"cycles" fc;
  Report.metric ~name:"speedup packet filter" ~unit_:"ratio" sf;
  Report.metric ~name:"install verification us" ~unit_:"us" inst
