(* Figure 6: video server CPU utilization as a function of the number
   of client streams, over the 45 Mb/s T3 DMA interface.

   SPIN: the kernel-extension server fetches each frame once, pushes
   each packet through the protocol graph once, and the multicast
   handler fans out at driver level — per-client work is a header
   patch and a DMA transmit.

   DEC OSF/1: the user-level server sends each stream separately —
   per client, per packet: a system call, a copy across the boundary,
   socket work, and a full protocol-stack traversal. *)

open Spin_net
module Machine = Spin_machine.Machine
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Nic = Spin_machine.Nic
module Sched = Spin_sched.Sched
module Bl_path = Spin_baseline.Bl_path
module Os_costs = Spin_baseline.Os_costs

let addr_server = Ip.addr_of_quad 10 0 0 1
let addr_sink = Ip.addr_of_quad 10 0 0 2

let frame_bytes = 12_500                  (* 3 Mb/s at 30 frames/s *)
let fps = 30

type setup = {
  clock : Clock.t;
  server : Host.t;
  sink : Host.t;
  video : Video.server;
}

let build () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create sim ~name:"server" ~addr:addr_server in
  let sink = Host.create sim ~name:"sink" ~addr:addr_sink in
  let nic, _ = Host.wire server sink ~kind:Nic.T3 in
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc = Spin_fs.Block_cache.create ~phys:server.Host.phys server.Host.machine server.Host.sched disk in
  let video = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    let v = Video.create_server server ~fs ~netif:nic ~port:5004 in
    Video.load_frames v ~count:15 ~frame_bytes;
    video := Some v));
  Host.run_all [ server; sink ];
  ignore (Video.create_client sink ~port:5004);
  { clock; server; sink; video = Option.get !video }

(* SPIN: the real extension structure (warm pass, then measure the
   server's own streaming cycles over one second). *)
let spin_utilization ~clients =
  let s = build () in
  for _ = 1 to clients do Video.add_client s.video addr_sink done;
  ignore (Sched.spawn s.server.Host.sched ~name:"warm" (fun () ->
    Video.stream s.video ~fps ~duration_s:0.6));
  Host.run_all [ s.server; s.sink ];
  let busy0 = Video.server_busy_cycles s.video in
  let t0 = Clock.now s.clock in
  ignore (Sched.spawn s.server.Host.sched ~name:"measured" (fun () ->
    Video.stream s.video ~fps ~duration_s:1.0));
  Host.run_all [ s.server; s.sink ];
  let busy = Video.server_busy_cycles s.video - busy0 in
  let elapsed = Clock.now s.clock - t0 in
  100. *. float_of_int busy /. float_of_int elapsed

(* OSF/1: same machine, same driver, but a user-level server. *)
let osf_stream_second s ~clients =
  let osf = Os_costs.osf1 in
  let clock = s.clock in
  let mtu = 1460 in
  let frames = fps in
  let busy = ref 0 in
  ignore (Sched.spawn s.server.Host.sched ~name:"osf-server" (fun () ->
    for _ = 1 to frames do
      busy := !busy + Clock.stamp clock (fun () ->
        for _ = 1 to clients do
          (* The server writes the frame to this client's socket. *)
          let rec packets off =
            if off < frame_bytes then begin
              let chunk = min mtu (frame_bytes - off) in
              Bl_path.user_send_overhead clock osf ~bytes:chunk;
              ignore (Udp.send s.server.Host.udp ~src_port:5004 ~dst:addr_sink
                        ~port:5004 (Bytes.create chunk));
              packets (off + chunk)
            end in
          packets 0
        done);
      Sched.sleep_us s.server.Host.sched (1_000_000. /. float_of_int fps)
    done));
  let t0 = Clock.now clock in
  Host.run_all [ s.server; s.sink ];
  let elapsed = Clock.now clock - t0 in
  100. *. float_of_int !busy /. float_of_int elapsed

let osf_utilization ~clients =
  let s = build () in
  osf_stream_second s ~clients

let figure6 () =
  Report.header
    "Figure 6: video server CPU utilization vs client streams (T3, DMA)";
  Printf.printf "%-10s %14s %14s\n" "clients" "SPIN util %" "OSF/1 util %";
  let points = [ 2; 4; 6; 8; 10; 12; 14 ] in
  let results =
    List.map
      (fun n -> (n, spin_utilization ~clients:n, osf_utilization ~clients:n))
      points in
  List.iter
    (fun (n, spin, osf) -> Printf.printf "%-10d %14.1f %14.1f\n" n spin osf)
    results;
  (* ASCII rendering of the figure. *)
  print_endline "\n  util%  (s = SPIN, o = DEC OSF/1)";
  let max_util =
    List.fold_left (fun m (_, s, o) -> max m (max s o)) 1. results in
  let rows = 12 in
  for r = rows downto 1 do
    let level = max_util *. float_of_int r /. float_of_int rows in
    Printf.printf "  %5.1f |" level;
    List.iter
      (fun (_, s, o) ->
        let cell =
          match o >= level, s >= level with
          | true, true -> " b "                  (* both *)
          | true, false -> " o "
          | false, true -> " s "
          | false, false -> "   " in
        Printf.printf "  %s " cell)
      results;
    print_newline ()
  done;
  Printf.printf "        +%s\n         " (String.make (List.length results * 6) '-');
  List.iter (fun (n, _, _) -> Printf.printf "  %2d   " n) results;
  print_newline ();
  Printf.printf
    "\n  Paper: at 15 streams both saturate the network; SPIN consumes\n\
    \  about half the processor of OSF/1.\n"
