(* Tables 5 and 6, Figure 5: networking.

   Both systems run the very same wire, NICs, drivers and protocol
   stack; the OSF/1 rows differ only in structure — their application
   endpoints live at user level and pay the boundary costs of
   [Bl_path] on every packet. *)

open Spin_net
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Nic = Spin_machine.Nic
module Sched = Spin_sched.Sched
module Bl_net = Spin_baseline.Bl_net
module Bl_path = Spin_baseline.Bl_path
module Os_costs = Spin_baseline.Os_costs
module Machine = Spin_machine.Machine

let addr_a = Ip.addr_of_quad 10 0 0 1
let addr_b = Ip.addr_of_quad 10 0 0 2
let addr_c = Ip.addr_of_quad 10 0 0 3

type sys = Spin_sys | Osf_sys

let sys_name = function Spin_sys -> "SPIN" | Osf_sys -> "DEC OSF/1"

let fresh_pair ?(optimized = false) kind =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let a = Host.create sim ~name:"a" ~addr:addr_a in
  let b = Host.create sim ~name:"b" ~addr:addr_b in
  ignore (Host.wire ~optimized a b ~kind);
  (clock, a, b)

(* ------------------------------------------------------------------ *)
(* Table 5: latency                                                   *)
(* ------------------------------------------------------------------ *)

let udp_latency ?optimized sys kind =
  let clock, a, b = fresh_pair ?optimized kind in
  let osf = Os_costs.osf1 in
  let bclock = b.Host.machine.Machine.clock in
  (* Echo server on b. *)
  ignore (Udp.listen b.Host.udp ~port:7 ~installer:"echo" (fun d ->
    (match sys with
     | Spin_sys -> ()
     | Osf_sys ->
       Bl_path.user_recv_overhead bclock osf ~bytes:(Pkt.length d.Udp.payload);
       Bl_path.user_send_overhead bclock osf ~bytes:(Pkt.length d.Udp.payload));
    (* Echo in place: response headers go into the request's headroom. *)
    ignore (Udp.send_pkt b.Host.udp ~src_port:7 ~dst:d.Udp.src
              ~port:d.Udp.src_port d.Udp.payload)));
  let rtts = ref [] in
  let t0 = ref 0. in
  let pending = ref 0 in
  ignore (Udp.listen a.Host.udp ~port:7070 ~installer:"probe" (fun d ->
    (match sys with
     | Spin_sys -> ()
     | Osf_sys ->
       Bl_path.user_recv_overhead clock osf ~bytes:(Pkt.length d.Udp.payload));
    rtts := (Clock.now_us clock -. !t0) :: !rtts;
    decr pending));
  let probes = 5 in
  ignore (Sched.spawn a.Host.sched ~name:"probe" (fun () ->
    for _ = 1 to probes do
      t0 := Clock.now_us clock;
      incr pending;
      (match sys with
       | Spin_sys -> ()
       | Osf_sys -> Bl_path.user_send_overhead clock osf ~bytes:16);
      ignore (Udp.send a.Host.udp ~src_port:7070 ~dst:addr_b ~port:7
                (Bytes.create 16));
      (* Wait for this echo before the next probe. *)
      while !pending > 0 do Sched.sleep_us a.Host.sched 50. done
    done));
  Host.run_all [ a; b ];
  match !rtts with
  | [] -> nan
  | _ :: warm -> Report.mean (if warm = [] then !rtts else warm)

(* ------------------------------------------------------------------ *)
(* Table 5: bandwidth                                                 *)
(* ------------------------------------------------------------------ *)

(* Pure transmit cost: the peer NIC swallows frames without a driver,
   so no receive-side work pollutes the sender's stamp (in the
   co-simulation, interrupts run inside whatever code is executing). *)
let measure_tx sys ~kind ~payload_bytes =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let a = Host.create sim ~name:"tx" ~addr:addr_a in
  let b = Machine.create_on sim ~name:"mute" () in
  let nic_a, _nic_b = Machine.connect a.Host.machine b ~kind () in
  let na = Netif.create a.Host.machine a.Host.sched a.Host.dispatcher nic_a
      ~name:"probe" in
  Ip.add_interface a.Host.ip na ~addr:addr_a;
  Ip.add_route a.Host.ip ~dst:addr_b na;
  Netif.start na;
  let osf = Os_costs.osf1 in
  let out = ref 0. in
  ignore (Sched.spawn a.Host.sched ~name:"tx" (fun () ->
    let n = 12 in
    let us = Cost.cycles_to_us (Clock.cost clock)
        (Clock.stamp clock (fun () ->
           for _ = 1 to n do
             (match sys with
              | Spin_sys -> ()
              | Osf_sys -> Bl_path.user_send_overhead clock osf ~bytes:payload_bytes);
             ignore (Udp.send a.Host.udp ~src_port:1 ~dst:addr_b ~port:9
                       (Bytes.create payload_bytes))
           done)) in
    out := us /. float_of_int n));
  Sched.run a.Host.sched;
  !out

(* A reliable blast: the sender streams [window]-packet bursts and
   waits for the receiver's ack of each burst. *)
let udp_bandwidth sys kind ~payload_bytes ~bursts =
  let clock, a, b = fresh_pair kind in
  let osf = Os_costs.osf1 in
  let window = 8 in
  let received = ref 0 in
  let bclock = b.Host.machine.Machine.clock in
  let in_burst = ref 0 in
  ignore (Udp.listen b.Host.udp ~port:9 ~installer:"sink" (fun d ->
    (match sys with
     | Spin_sys -> ()
     | Osf_sys ->
       Bl_path.user_recv_overhead bclock osf ~bytes:(Pkt.length d.Udp.payload));
    received := !received + Pkt.length d.Udp.payload;
    incr in_burst;
    if !in_burst = window then begin
      in_burst := 0;
      (match sys with
       | Spin_sys -> ()
       | Osf_sys -> Bl_path.user_send_overhead bclock osf ~bytes:4);
      ignore (Udp.send b.Host.udp ~src_port:9 ~dst:d.Udp.src ~port:d.Udp.src_port
                (Bytes.create 4))
    end));
  let acked = ref 0 in
  ignore (Udp.listen a.Host.udp ~port:9091 ~installer:"acks" (fun _ -> incr acked));
  let t_start = ref 0. and t_end = ref 0. in
  let tx_samples = ref [] in
  ignore (Sched.spawn a.Host.sched ~name:"blast" (fun () ->
    t_start := Clock.now_us clock;
    for burst = 1 to bursts do
      for _ = 1 to window do
        let t0 = Clock.now_us clock in
        (match sys with
         | Spin_sys -> ()
         | Osf_sys -> Bl_path.user_send_overhead clock osf ~bytes:payload_bytes);
        ignore (Udp.send a.Host.udp ~src_port:9091 ~dst:addr_b ~port:9
                  (Bytes.create payload_bytes));
        tx_samples := (Clock.now_us clock -. t0) :: !tx_samples
      done;
      while !acked < burst do Sched.sleep_us a.Host.sched 100. done
    done;
    t_end := Clock.now_us clock));
  let idle0 = Clock.idle_cycles clock in
  Host.run_all [ a; b ];
  (* The co-simulation serializes sender and receiver on one virtual
     clock; real hosts overlap. Recover the pipeline bandwidth from
     measured per-stage busy time: the throughput of a pipeline is
     set by its slowest stage (sender CPU, receiver CPU, or wire). *)
  let cost = Clock.cost clock in
  let idle_us =
    Cost.cycles_to_us cost (Clock.idle_cycles clock - idle0) in
  let packets = bursts * window in
  let busy_us = (!t_end -. !t_start) -. idle_us in
  ignore !tx_samples;
  let tx_us = measure_tx sys ~kind ~payload_bytes in
  let rx_us = (busy_us /. float_of_int packets) -. tx_us in
  let wire_us =
    float_of_int ((payload_bytes + 90) * 8) /. Nic.link_mbps kind in
  let stage_us = max tx_us (max rx_us wire_us) in
  if Sys.getenv_opt "SPIN_BENCH_DEBUG" <> None then
    Printf.eprintf "  [debug %s] tx=%.0f rx=%.0f wire=%.0f us/packet\n"
      (sys_name sys) tx_us rx_us wire_us;
  float_of_int (payload_bytes * 8) /. stage_us   (* Mb/s *)

let table5 () =
  Report.header "Table 5: UDP latency (us) and receive bandwidth (Mb/s)";
  Printf.printf "%-22s %-12s %10s %10s\n" "metric" "system" "paper" "measured";
  let row ?(qual = "") ?(unit_ = "us") metric sys paper measured =
    Printf.printf "%-22s %-12s %10.1f %10.1f\n" metric (sys_name sys)
      paper measured;
    Report.metric ~unit_
      ~name:(Printf.sprintf "%s %s%s" metric (sys_name sys) qual) measured in
  row "Ethernet latency" Osf_sys 789. (udp_latency Osf_sys Nic.Lance);
  row "Ethernet latency" Spin_sys 565. (udp_latency Spin_sys Nic.Lance);
  row "ATM latency" Osf_sys 631. (udp_latency Osf_sys Nic.Fore_atm);
  row "ATM latency" Spin_sys 421. (udp_latency Spin_sys Nic.Fore_atm);
  row ~unit_:"Mb/s" "Ethernet bandwidth" Osf_sys 8.9
    (udp_bandwidth Osf_sys Nic.Lance ~payload_bytes:1400 ~bursts:12);
  row ~unit_:"Mb/s" "Ethernet bandwidth" Spin_sys 8.9
    (udp_bandwidth Spin_sys Nic.Lance ~payload_bytes:1400 ~bursts:12);
  row ~unit_:"Mb/s" "ATM bandwidth" Osf_sys 27.9
    (udp_bandwidth Osf_sys Nic.Fore_atm ~payload_bytes:8078 ~bursts:12);
  row ~unit_:"Mb/s" "ATM bandwidth" Spin_sys 33.
    (udp_bandwidth Spin_sys Nic.Fore_atm ~payload_bytes:8078 ~bursts:12);
  (* The paper's footnote: with drivers optimized for latency, SPIN
     reaches 337 us on Ethernet and 241 us on ATM. *)
  Printf.printf "  (optimized drivers, SPIN only:)\n";
  row ~qual:" optimized" "Ethernet latency" Spin_sys 337.
    (udp_latency ~optimized:true Spin_sys Nic.Lance);
  row ~qual:" optimized" "ATM latency" Spin_sys 241.
    (udp_latency ~optimized:true Spin_sys Nic.Fore_atm)

(* ------------------------------------------------------------------ *)
(* Table 6: protocol forwarding                                       *)
(* ------------------------------------------------------------------ *)

let fresh_triple kind =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let client = Host.create sim ~name:"client" ~addr:addr_a in
  let fwd = Host.create sim ~name:"fwd" ~addr:addr_c in
  let server = Host.create sim ~name:"server" ~addr:addr_b in
  ignore (Host.wire client fwd ~kind);
  ignore (Host.wire fwd server ~kind);
  (clock, client, fwd, server)

let forward_udp_latency sys kind =
  let clock, client, fwd, server = fresh_triple kind in
  (match sys with
   | Spin_sys ->
     ignore (Forward.create fwd.Host.ip ~proto:Ip.proto_udp ~port:9000
               ~to_:addr_b)
   | Osf_sys ->
     (* The user-level splice: each packet crosses to user space and
        back on the forwarding host. *)
     let osf = Os_costs.osf1 in
     let fclock = fwd.Host.machine.Machine.clock in
     let flows : (int, Ip.addr * int) Hashtbl.t = Hashtbl.create 8 in
     ignore (Udp.listen fwd.Host.udp ~port:9000 ~installer:"splice" (fun d ->
       Bl_path.user_recv_overhead fclock osf ~bytes:(Pkt.length d.Udp.payload);
       Bl_path.user_send_overhead fclock osf ~bytes:(Pkt.length d.Udp.payload);
       let dst, port =
         if d.Udp.src = addr_b then
           match Hashtbl.find_opt flows d.Udp.src_port with
           | Some c -> c
           | None -> (addr_b, 9000)
         else begin
           Hashtbl.replace flows 9000 (d.Udp.src, d.Udp.src_port);
           (addr_b, 9000)
         end in
       ignore (Udp.send fwd.Host.udp ~src_port:9000 ~dst ~port
                 (Pkt.contents d.Udp.payload)))));
  ignore (Udp.listen server.Host.udp ~port:9000 ~installer:"echo" (fun d ->
    ignore (Udp.send_pkt server.Host.udp ~src_port:9000 ~dst:d.Udp.src
              ~port:d.Udp.src_port d.Udp.payload)));
  let rtts = ref [] and t0 = ref 0. and pending = ref 0 in
  ignore (Udp.listen client.Host.udp ~port:5555 ~installer:"probe" (fun _ ->
    rtts := (Clock.now_us clock -. !t0) :: !rtts;
    decr pending));
  ignore (Sched.spawn client.Host.sched ~name:"probe" (fun () ->
    for _ = 1 to 4 do
      t0 := Clock.now_us clock;
      incr pending;
      ignore (Udp.send client.Host.udp ~src_port:5555 ~dst:addr_c ~port:9000
                (Bytes.create 16));
      while !pending > 0 do Sched.sleep_us client.Host.sched 50. done
    done));
  Host.run_all [ client; fwd; server ];
  match !rtts with
  | [] -> nan
  | _ :: warm -> Report.mean (if warm = [] then !rtts else warm)

(* TCP through the forwarder: SPIN forwards packets below TCP (one
   end-to-end connection); the OSF splice terminates the client's
   connection at user level and opens a second one to the server. *)
let forward_tcp_latency sys kind =
  let clock, client, fwd, server = fresh_triple kind in
  Tcp.listen server.Host.tcp ~port:80 ~on_accept:(fun conn ->
    Tcp.on_receive conn (fun data -> Tcp.send server.Host.tcp conn data));
  (match sys with
   | Spin_sys ->
     ignore (Forward.create ~tcp:fwd.Host.tcp fwd.Host.ip ~proto:Ip.proto_tcp
               ~port:80 ~to_:addr_b)
   | Osf_sys ->
     let osf = Os_costs.osf1 in
     let fclock = fwd.Host.machine.Machine.clock in
     Tcp.listen fwd.Host.tcp ~port:80 ~on_accept:(fun upstream ->
       ignore (Sched.spawn fwd.Host.sched ~name:"splice" (fun () ->
         match Tcp.connect fwd.Host.tcp ~dst:addr_b ~dst_port:80 with
         | None -> ()
         | Some downstream ->
           Tcp.on_receive upstream (fun data ->
             Bl_path.user_recv_overhead fclock osf ~bytes:(Bytes.length data);
             Bl_path.user_send_overhead fclock osf ~bytes:(Bytes.length data);
             Tcp.send fwd.Host.tcp downstream data);
           Tcp.on_receive downstream (fun data ->
             Bl_path.user_recv_overhead fclock osf ~bytes:(Bytes.length data);
             Bl_path.user_send_overhead fclock osf ~bytes:(Bytes.length data);
             Tcp.send fwd.Host.tcp upstream data)))));
  let rtt = ref nan in
  ignore (Sched.spawn client.Host.sched ~name:"probe" (fun () ->
    match Tcp.connect client.Host.tcp ~dst:addr_c ~dst_port:80 with
    | None -> ()
    | Some conn ->
      (* One warm round trip, then four measured. *)
      Tcp.send client.Host.tcp conn (Bytes.create 16);
      ignore (Tcp.read client.Host.tcp conn);
      let samples = ref [] in
      for _ = 1 to 4 do
        let t0 = Clock.now_us clock in
        Tcp.send client.Host.tcp conn (Bytes.create 16);
        ignore (Tcp.read client.Host.tcp conn);
        samples := (Clock.now_us clock -. t0) :: !samples
      done;
      rtt := Report.mean !samples;
      Tcp.close client.Host.tcp conn;
      Sched.sleep_us client.Host.sched 10_000.));
  Host.run_all [ client; fwd; server ];
  !rtt

let table6 () =
  Report.header "Table 6: protocol forwarding, 16-byte round trip (us)";
  Printf.printf "%-26s %-12s %10s %10s\n" "path" "system" "paper" "measured";
  let row path sys paper v =
    Printf.printf "%-26s %-12s %10.0f %10.0f\n" path (sys_name sys) paper v;
    Report.metric ~name:(path ^ " " ^ sys_name sys) v in
  row "TCP over Ethernet" Osf_sys 2080. (forward_tcp_latency Osf_sys Nic.Lance);
  row "TCP over Ethernet" Spin_sys 1420. (forward_tcp_latency Spin_sys Nic.Lance);
  row "TCP over ATM" Osf_sys 1730. (forward_tcp_latency Osf_sys Nic.Fore_atm);
  row "TCP over ATM" Spin_sys 1067. (forward_tcp_latency Spin_sys Nic.Fore_atm);
  row "UDP over Ethernet" Osf_sys 1607. (forward_udp_latency Osf_sys Nic.Lance);
  row "UDP over Ethernet" Spin_sys 1344. (forward_udp_latency Spin_sys Nic.Lance);
  row "UDP over ATM" Osf_sys 1389. (forward_udp_latency Osf_sys Nic.Fore_atm);
  row "UDP over ATM" Spin_sys 1024. (forward_udp_latency Spin_sys Nic.Fore_atm)

(* ------------------------------------------------------------------ *)
(* Figure 5: the protocol graph                                       *)
(* ------------------------------------------------------------------ *)

let figure5 () =
  Report.header "Figure 5: protocol graph from live dispatcher registrations";
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let host = Host.create sim ~name:"graph" ~addr:addr_a in
  let peer = Host.create sim ~name:"peer" ~addr:addr_b in
  let nic, _ = Host.wire host peer ~kind:Nic.Lance in
  ignore (Host.wire host peer ~kind:Nic.Fore_atm);
  (* Populate the stack the way Figure 5 draws it. *)
  ignore (Forward.create host.Host.ip ~proto:Ip.proto_udp ~port:9000
            ~to_:addr_b);
  let disk = Machine.add_disk ~blocks:16384 host.Host.machine in
  let bc = Spin_fs.Block_cache.create ~phys:host.Host.phys host.Host.machine host.Host.sched disk in
  ignore (Sched.spawn host.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:16384 () in
    let cache = Spin_fs.File_cache.create ~phys:host.Host.phys fs in
    ignore (Http.create host.Host.machine host.Host.sched host.Host.tcp cache);
    ignore (Video.create_server host ~fs ~netif:nic ~port:5004)));
  Host.run_all [ host; peer ];
  ignore (Video.create_client peer ~port:5004);
  print_string (Proto_graph.render host.Host.dispatcher)
