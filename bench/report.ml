(* Shared formatting for the benchmark harness: every table prints
   paper-reported values next to our measured ones. With a JSON sink
   installed (--json FILE), experiments also record machine-readable
   metrics, giving CI a perf trajectory across commits. *)

type metric = {
  m_experiment : string;
  m_name : string;
  m_value : float;
  m_unit : string;
}

(* Host wall-clock for throughput measurements. CLOCK_MONOTONIC via
   bechamel's stub: immune to NTP steps, and unlike [Sys.time] it
   counts real elapsed time, not process CPU time — a simulation that
   blocks or is descheduled still measures honestly. *)
let wall_ns () = Monotonic_clock.now ()

let wall_s () = Int64.to_float (wall_ns ()) /. 1e9

let json_path : string option ref = ref None
let current_experiment = ref ""
let metrics : metric list ref = ref []

let set_json path = json_path := Some path

let experiment name = current_experiment := name

let metric ?(unit_ = "us") ~name value =
  if !json_path <> None then
    metrics :=
      { m_experiment = !current_experiment; m_name = name;
        m_value = value; m_unit = unit_ } :: !metrics

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "{\"schema\":\"spin-bench/1\",\"results\":[";
    List.iteri
      (fun i m ->
         if i > 0 then output_char oc ',';
         Printf.fprintf oc
           "{\"experiment\":\"%s\",\"name\":\"%s\",\"value\":%g,\"unit\":\"%s\"}"
           (json_escape m.m_experiment) (json_escape m.m_name)
           m.m_value (json_escape m.m_unit))
      (List.rev !metrics);
    output_string oc "]}\n";
    close_out oc;
    Printf.printf "\nwrote %d metrics to %s\n" (List.length !metrics) path

let header title =
  let line = String.make 72 '-' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let columns3 a b c = Printf.printf "%-34s %14s %14s\n" a b c

let columns4 a b c d = Printf.printf "%-28s %12s %12s %12s\n" a b c d

let row_us name ~paper ~measured =
  Printf.printf "%-34s %11.2f us %11.2f us   (x%.2f)\n"
    name paper measured (measured /. paper)

let row3_us name ~paper ~measured ~paper2 ~measured2 =
  Printf.printf "%-22s %8.0f/%-8.0f %8.0f/%-8.0f  (paper/measured)\n"
    name paper measured paper2 measured2

let note fmt = Printf.printf fmt

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
