(* HTTP load scaling over the zero-copy packet path (section 5.4,
   extended): a closed loop of 1..N simulated clients against the
   in-kernel web server, reporting requests/sec and p50/p99 request
   latency from the tracer's histograms — plus a direct before/after
   measurement of host allocation per forwarded packet, replaying the
   seed Pkt's copy discipline against today's view discipline.

     dune exec bench/main.exe load
     dune exec bench/main.exe -- --json BENCH_load.json load *)

open Spin_net
module Clock = Spin_machine.Clock
module Trace = Spin_machine.Trace
module Sched = Spin_sched.Sched

(* ------------------------------------------------------------------ *)
(* Closed-loop ramp against the in-kernel server                      *)
(* ------------------------------------------------------------------ *)

let requests_per_client = 20
let latency_key = "load.request"

(* One ramp level: [clients] strands on the client host, each running
   a closed loop of connect / GET / drain / close against the server's
   cached 2 KB index.html. With [traced] the per-request latencies
   feed a {!Trace} histogram; untraced, the pass measures host-side
   allocation per request instead (the tracer itself allocates, so the
   two measurements run separately). *)
let run_level ~clients ~traced =
  let clock, client, server = B_extra.web_fixture () in
  let tr = Trace.of_clock clock in
  if traced then Trace.enable tr;
  let total = clients * requests_per_client in
  let completed = ref 0 in
  let t_start = ref 0. and t_end = ref 0. in
  let client_loop () =
    for _ = 1 to requests_per_client do
      let t0 = Clock.now clock in
      B_extra.http_get clock client;
      Trace.record_latency tr ~key:latency_key (Clock.now clock - t0);
      incr completed;
      if !completed = total then t_end := Clock.now_us clock
    done in
  ignore (Sched.spawn client.Host.sched ~name:"driver" (fun () ->
    (* Warm the file/object caches outside the measurement. *)
    B_extra.http_get clock client;
    t_start := Clock.now_us clock;
    for c = 1 to clients do
      ignore (Sched.spawn client.Host.sched
                ~name:(Printf.sprintf "client-%d" c) client_loop)
    done));
  let host_alloc0 = Gc.allocated_bytes () in
  Host.run_all [ client; server ];
  let alloc_per_req =
    (Gc.allocated_bytes () -. host_alloc0) /. float_of_int total in
  let elapsed_us = !t_end -. !t_start in
  let rps =
    if elapsed_us > 0. then float_of_int total /. (elapsed_us /. 1e6)
    else nan in
  match Trace.summary tr ~key:latency_key with
  | Some s when traced -> (rps, s.Trace.p50_us, s.Trace.p99_us, alloc_per_req)
  | _ -> (rps, nan, nan, alloc_per_req)

(* ------------------------------------------------------------------ *)
(* Host allocation per forwarded packet, before vs after              *)
(* ------------------------------------------------------------------ *)

(* Wire framing of this stack: link (2) + IP (12) + UDP (8). *)
let link_hdr = 2
let ip_hdr = 12
let udp_hdr = Udp.header_bytes

(* The seed's Pkt materialized every layer's slice. This replays, with
   plain [Bytes], the exact allocation sequence of a UDP echo on that
   discipline: driver [of_payload] copy; IP's [peek] guard, two
   [pull]s (head + tail each), [contents], and declared-length [sub];
   UDP's payload [sub] — then the transmit side rebuilds the frame
   ([encode_datagram], [of_payload], two [push]-by-concatenation) and
   the driver takes its [contents] copy. *)
let legacy_echo frame =
  let total = Bytes.length frame in
  let p = Bytes.copy frame in                               (* rx DMA wrap *)
  ignore (Bytes.sub p 0 link_hdr);                          (* guard peek *)
  let p = Bytes.sub p link_hdr (total - link_hdr) in        (* pull link *)
  let _h = Bytes.sub p 0 ip_hdr in
  let p = Bytes.sub p ip_hdr (Bytes.length p - ip_hdr) in   (* pull IP *)
  let dgram = Bytes.copy p in                               (* contents *)
  let dgram = Bytes.sub dgram 0 (Bytes.length dgram) in     (* len check *)
  let plen = Bytes.length dgram - udp_hdr in
  let payload = Bytes.sub dgram udp_hdr plen in             (* UDP payload *)
  let out = Bytes.make (udp_hdr + plen) '\000' in           (* encode dgram *)
  Bytes.blit payload 0 out udp_hdr plen;
  let out = Bytes.copy out in                               (* of_payload *)
  let out = Bytes.cat (Bytes.make ip_hdr '\000') out in     (* push IP *)
  let out = Bytes.cat (Bytes.make link_hdr '\000') out in   (* push link *)
  Bytes.copy out                                            (* tx contents *)

(* The same echo on today's Pkt: the frame is wrapped in place, each
   layer drops its header by advancing the view, the response headers
   are pushed into the consumed headroom, and the only copy left is
   the device DMA when the frame goes back on the wire. *)
let zerocopy_echo frame =
  let p = Pkt.of_frame frame in
  ignore (Pkt.get_u16_le p 0);                              (* guard in place *)
  Pkt.drop p link_hdr;
  Pkt.drop p ip_hdr;
  let plen = Pkt.length p - udp_hdr in
  let d = Pkt.sub p ~pos:udp_hdr ~len:plen in               (* payload view *)
  let buf, off = Pkt.push_view d udp_hdr in                 (* echo headers *)
  Bytes.set_uint16_le buf off 7;
  Bytes.set_uint16_le buf (off + 2) 7;
  Bytes.set_uint16_le buf (off + 4) plen;
  Bytes.set_uint16_le buf (off + 6) 0;
  let buf, off = Pkt.push_view d ip_hdr in
  Bytes.fill buf off ip_hdr '\000';
  let buf, off = Pkt.push_view d link_hdr in
  Bytes.set_uint16_le buf off 0x0800;
  let buf, off, len = Pkt.view d in
  Bytes.sub buf off len                                     (* device DMA *)

let alloc_per_packet f =
  let payload = 1024 in
  let frame = Bytes.make (link_hdr + ip_hdr + udp_hdr + payload) 'x' in
  Bytes.set_uint16_le frame 0 0x0800;
  for _ = 1 to 256 do ignore (Sys.opaque_identity (f frame)) done;
  let iters = 20_000 in
  let before = Gc.allocated_bytes () in
  for _ = 1 to iters do ignore (Sys.opaque_identity (f frame)) done;
  (Gc.allocated_bytes () -. before) /. float_of_int iters

let alloc_comparison () =
  Report.header
    "Host allocation per forwarded packet (UDP echo, 1024-byte payload)";
  let legacy = alloc_per_packet legacy_echo in
  let zerocopy = alloc_per_packet zerocopy_echo in
  let ratio = legacy /. zerocopy in
  Printf.printf "%-42s %12s\n" "packet discipline" "bytes/pkt";
  Printf.printf "%-42s %12.0f\n" "seed Pkt (copy per layer)" legacy;
  Printf.printf "%-42s %12.0f\n" "zero-copy views (this tree)" zerocopy;
  Printf.printf "  ratio: %.1fx fewer host bytes per packet (>= 2x required)\n"
    ratio;
  Report.metric ~unit_:"B" ~name:"alloc/pkt seed Pkt" legacy;
  Report.metric ~unit_:"B" ~name:"alloc/pkt zero-copy" zerocopy;
  Report.metric ~unit_:"x" ~name:"alloc ratio" ratio

(* ------------------------------------------------------------------ *)

let run () =
  Report.header
    "HTTP load scaling, closed loop over the zero-copy path (5.4)";
  Printf.printf "%-8s %10s %12s %12s %14s\n"
    "clients" "req/s" "p50 (us)" "p99 (us)" "host B/req";
  List.iter
    (fun clients ->
       let rps, p50, p99, _ = run_level ~clients ~traced:true in
       let _, _, _, alloc = run_level ~clients ~traced:false in
       Printf.printf "%-8d %10.0f %12.0f %12.0f %14.0f\n"
         clients rps p50 p99 alloc;
       let m name unit_ v =
         Report.metric ~unit_ ~name:(Printf.sprintf "%s clients=%d" name clients) v in
       m "req/s" "req/s" rps;
       m "p50" "us" p50;
       m "p99" "us" p99;
       m "host alloc/req" "B" alloc)
    [ 1; 2; 4; 8; 16 ];
  Report.note
    "  Latency grows with queueing at the single-CPU server while\n\
    \  throughput saturates: the closed loop keeps exactly N requests\n\
    \  in flight.\n";
  alloc_comparison ()
