(* spinsim: boot the reproduced SPIN kernel and drive scenarios.

     dune exec bin/spinsim.exe -- boot
     dune exec bin/spinsim.exe -- graph
     dune exec bin/spinsim.exe -- video --clients 8 --seconds 1.0
     dune exec bin/spinsim.exe -- ping --count 5 --atm *)

open Cmdliner
open Spin_net
module Kernel = Spin.Kernel
module Dispatcher = Spin_core.Dispatcher
module Machine = Spin_machine.Machine
module Clock = Spin_machine.Clock
module Cost = Spin_machine.Cost
module Sim = Spin_machine.Sim
module Nic = Spin_machine.Nic
module Sched = Spin_sched.Sched
module Kheap = Spin_kgc.Kheap

let addr_a = Ip.addr_of_quad 10 0 0 1
let addr_b = Ip.addr_of_quad 10 0 0 2

(* ------------------------------------------------------------------ *)

let boot_cmd () =
  let k = Kernel.boot ~name:"spinsim" () in
  Printf.printf "SPIN (reproduction) booted on a simulated %d MHz Alpha\n"
    (Cost.alpha_133.Cost.cycles_per_us);
  Printf.printf "  physical memory : %d MB (%d frames)\n"
    (Spin_machine.Phys_mem.bytes_total k.Kernel.machine.Machine.mem
     / 1024 / 1024)
    (Spin_machine.Phys_mem.frames k.Kernel.machine.Machine.mem);
  Printf.printf "  dispatcher      : fast-path call %.2f us\n"
    (let e = Dispatcher.declare k.Kernel.dispatcher ~name:"Boot.Null"
         ~owner:"Boot" (fun () -> ()) in
     Kernel.stamp_us k (fun () -> Dispatcher.raise_event e ()));
  Kernel.register_syscall k ~number:0 (fun _ -> 0);
  Printf.printf "  system call     : %.2f us\n"
    (Kernel.stamp_us k (fun () -> ignore (Kernel.syscall k ~number:0 ~args:[||])));
  Printf.printf "  heap            : %d words live, collector %s\n"
    (Kheap.live_words k.Kernel.heap) "on";
  Printf.printf "  extensions      : %d loaded\n" (Kernel.extension_count k);
  `Ok ()

let graph_cmd () =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let host = Host.create sim ~name:"graph" ~addr:addr_a in
  let peer = Host.create sim ~name:"peer" ~addr:addr_b in
  ignore (Host.wire host peer ~kind:Nic.Lance);
  ignore (Host.wire host peer ~kind:Nic.Fore_atm);
  ignore (Forward.create host.Host.ip ~proto:Ip.proto_udp ~port:9000 ~to_:addr_b);
  print_string (Proto_graph.render host.Host.dispatcher);
  `Ok ()

let ping_cmd count atm =
  let kind = if atm then Nic.Fore_atm else Nic.Lance in
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let a = Host.create sim ~name:"a" ~addr:addr_a in
  let b = Host.create sim ~name:"b" ~addr:addr_b in
  ignore (Host.wire a b ~kind);
  let done_ = ref 0 in
  ignore (Sched.spawn a.Host.sched ~name:"ping" (fun () ->
    for seq = 1 to count do
      let t0 = Clock.now_us clock in
      let received = ref false in
      ignore (Icmp.ping a.Host.icmp ~dst:addr_b ~seq (fun () ->
        received := true;
        incr done_;
        Printf.printf "16 bytes from %s: seq=%d time=%.0f us\n"
          (Ip.addr_to_string addr_b) seq (Clock.now_us clock -. t0)));
      while not !received do Sched.sleep_us a.Host.sched 100. done
    done));
  Host.run_all [ a; b ];
  Printf.printf "%d/%d echoes over %s\n" !done_ count (Nic.kind_name kind);
  `Ok ()

let video_cmd clients seconds =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let server = Host.create sim ~name:"server" ~addr:addr_a in
  let sink = Host.create sim ~name:"sink" ~addr:addr_b in
  let nic, _ = Host.wire server sink ~kind:Nic.T3 in
  let disk = Machine.add_disk ~blocks:65536 server.Host.machine in
  let bc = Spin_fs.Block_cache.create ~phys:server.Host.phys server.Host.machine server.Host.sched disk in
  let v = ref None in
  ignore (Sched.spawn server.Host.sched ~name:"setup" (fun () ->
    let fs = Spin_fs.Simple_fs.format bc ~blocks:65536 () in
    let s = Video.create_server server ~fs ~netif:nic ~port:5004 in
    Video.load_frames s ~count:15 ~frame_bytes:12_500;
    v := Some s));
  Host.run_all [ server; sink ];
  let s = Option.get !v in
  let client = Video.create_client sink ~port:5004 in
  for _ = 1 to clients do Video.add_client s addr_b done;
  ignore (Sched.spawn server.Host.sched ~name:"warm" (fun () ->
    Video.stream s ~fps:30 ~duration_s:0.5));
  Host.run_all [ server; sink ];
  let busy0 = Video.server_busy_cycles s in
  let t0 = Clock.now clock in
  ignore (Sched.spawn server.Host.sched ~name:"stream" (fun () ->
    Video.stream s ~fps:30 ~duration_s:seconds));
  Host.run_all [ server; sink ];
  let busy = Video.server_busy_cycles s - busy0 in
  let elapsed = Clock.now clock - t0 in
  Printf.printf "%d client streams for %.1fs: %d packets, %d frames displayed\n"
    clients seconds (Video.packets_sent s) (Video.frames_displayed client);
  Printf.printf "server CPU utilization: %.1f%%\n"
    (100. *. float_of_int busy /. float_of_int elapsed);
  `Ok ()

let debug_cmd pa =
  let clock = Clock.create Cost.alpha_133 in
  let sim = Sim.create clock in
  let target = Host.create sim ~name:"target" ~addr:addr_b in
  let console = Host.create sim ~name:"console" ~addr:addr_a in
  ignore (Host.wire console target ~kind:Nic.Lance);
  ignore (Netdbg.serve target target.Host.sched);
  (* Some activity on the target so the statistics say something. *)
  for i = 1 to 3 do
    ignore (Sched.spawn target.Host.sched ~name:(Printf.sprintf "job%d" i)
              (fun () -> Clock.charge clock 5_000))
  done;
  Spin_machine.Phys_mem.write_word target.Host.machine.Machine.mem ~pa
    0x5350494EL;                          (* "SPIN" *)
  ignore (Sched.spawn console.Host.sched ~name:"debugger" (fun () ->
    Printf.printf "alive: %b
" (Netdbg.query_alive console ~dst:addr_b ());
    (match Netdbg.query_stats console ~dst:addr_b () with
     | Some r ->
       Printf.printf
         "target: %d strands spawned, %d completed, %d failed, %d switches, %d events
"
         r.Netdbg.strands_spawned r.Netdbg.strands_completed
         r.Netdbg.strands_failed r.Netdbg.context_switches
         r.Netdbg.events_declared
     | None -> print_endline "no stats reply");
    (match Netdbg.query_peek console ~dst:addr_b ~pa () with
     | Some w -> Printf.printf "peek pa=0x%x: 0x%Lx
" pa w
     | None -> Printf.printf "peek pa=0x%x refused
" pa)));
  Host.run_all [ console; target ];
  `Ok ()

(* ------------------------------------------------------------------ *)

let boot_t = Term.(ret (const boot_cmd $ const ()))
let graph_t = Term.(ret (const graph_cmd $ const ()))

let count_arg =
  Arg.(value & opt int 4 & info [ "count"; "c" ] ~doc:"Number of echo probes.")

let atm_arg =
  Arg.(value & flag & info [ "atm" ] ~doc:"Use the FORE ATM interface.")

let ping_t = Term.(ret (const ping_cmd $ count_arg $ atm_arg))

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client stream count.")

let seconds_arg =
  Arg.(value & opt float 1.0 & info [ "seconds" ] ~doc:"Streaming duration.")

let video_t = Term.(ret (const video_cmd $ clients_arg $ seconds_arg))

let pa_arg =
  Arg.(value & opt int 4096 & info [ "pa" ] ~doc:"Physical address to peek.")

let debug_t = Term.(ret (const debug_cmd $ pa_arg))

let cmds = [
  Cmd.v (Cmd.info "boot" ~doc:"Boot the kernel and report core costs") boot_t;
  Cmd.v (Cmd.info "graph" ~doc:"Print the live protocol graph (Figure 5)") graph_t;
  Cmd.v (Cmd.info "ping" ~doc:"ICMP echo between two simulated hosts") ping_t;
  Cmd.v (Cmd.info "video" ~doc:"Run the video server scenario (Figure 6)") video_t;
  Cmd.v (Cmd.info "debug" ~doc:"Query a kernel over the network debugger") debug_t;
]

let () =
  let info = Cmd.info "spinsim" ~version:"0.4"
      ~doc:"Drive the SPIN operating system reproduction" in
  exit (Cmd.eval (Cmd.group info cmds))
